"""The denotational semantics of Section 4.2–4.3.

The evaluator computes (a fuel-bounded approximation of) the denotation
``[e]ρ`` of an expression.  The combinator rules are transcribed
directly from the paper:

* ``[e1 + e2] = v1 ⊕ v2`` if both normal, else
  ``Bad (S[e1] ∪ S[e2])`` — and likewise for every strict primitive;
* application against an exceptional function unions in the argument's
  exceptions: ``[e1 e2] = Bad (s ∪ S[e2])`` if ``[e1] = Bad s`` — "we
  have traded transformations for precision";
* constructors and lambdas are non-strict normal values;
* ``case`` on an exceptional scrutinee enters *exception-finding mode*:
  every alternative is (semantically) explored with its pattern
  variables bound to the strange value ``Bad {}``, and all the resulting
  exception sets are unioned (Section 4.3);
* ``fix`` is the least fixed point; we compute it lazily by knot-tying,
  with re-entrant demand detected as ⊥.

Divergence is handled with *fuel*: each evaluator step consumes one
unit, and exhaustion yields ⊥ (``Bad (E ∪ {NonTermination})``).  This
computes the k-th element of the paper's ascending chain for ``fix`` —
an approximation from below that is monotone in the fuel (property
tested in ``tests/core/test_monotonicity.py``).

Two knobs let the baselines of Section 3.4 reuse this evaluator:

* ``prim_mode="left-first"`` gives the ML/FL fixed-evaluation-order
  semantics (the first exceptional argument wins, no union);
* ``case_mode="naive"`` disables exception-finding mode (the scrutinee's
  exceptions are returned alone — the rule the paper rejects because it
  invalidates case-switching).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.core.domains import (
    BAD_EMPTY,
    BOTTOM,
    Bad,
    ConVal,
    FunVal,
    IOVal,
    Ok,
    SemVal,
    Thunk,
    exc_part,
    mk_bad,
)
from repro.core.excset import (
    BOTTOM_SET,
    DIVIDE_BY_ZERO,
    EMPTY_SET,
    Exc,
    ExcSet,
    OVERFLOW,
    PATTERN_MATCH_FAIL,
    user_error,
)
from repro.lang.ast import (
    Alt,
    App,
    Case,
    Con,
    Expr,
    Fix,
    Lam,
    Let,
    Lit,
    Pattern,
    PCon,
    PLit,
    PrimOp,
    Program,
    PVar,
    PWild,
    Raise,
    Var,
)
from repro.lang.ops import INT_MAX, INT_MIN
from repro.obs.events import CASE_EXCEPTION_MODE_ENTER, EXCSET_JOIN
from repro.obs.sinks import TraceSink, is_live

Env = Dict[str, Thunk]

_MIN_RECURSION_LIMIT = 400_000


def ensure_recursion_headroom() -> None:
    if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
        sys.setrecursionlimit(_MIN_RECURSION_LIMIT)


class InternalError(Exception):
    """An ill-formed program reached the evaluator (a bug in the caller
    or a type error the checker would have caught)."""


@dataclass
class DenoteContext:
    """Shared evaluation state: the fuel budget and semantics knobs.

    ``max_depth`` bounds the evaluator's recursion depth separately
    from fuel: exception-finding exploration of a recursive function
    applied to an exceptional value regresses depth-linearly (its true
    denotation is ⊥ — see EXPERIMENTS.md F-1), and the Python stack
    must be protected.  Exceeding the depth returns ⊥, the same
    sound-from-below approximation fuel exhaustion uses.

    ``sink`` is the observability decoration: when live it receives
    ``excset-join`` events (with the resulting set's width, feeding the
    set-width histogram) and ``case-exception-mode-enter`` events
    (Section 4.3).  It must never influence the computed denotation —
    tracing a decoration, not an effect.

    ``provenance`` is an optional
    :class:`repro.obs.provenance.ExcOrigins` table: when attached,
    each Exc-introduction site notes the source span that created the
    member, so ``repro explain`` can show where every member of the
    *full* denoted set comes from.  Like the sink it is pure metadata —
    one ``is not None`` check per introduction site, nothing on the
    propagation paths.
    """

    fuel: int = 200_000
    case_mode: str = "exception-finding"  # or "naive"
    prim_mode: str = "union"  # or "left-first"
    app_unions_arg: bool = True
    steps: int = 0
    max_depth: int = 25_000
    depth: int = 0
    sink: Optional[TraceSink] = None
    provenance: Optional[object] = None

    def __post_init__(self) -> None:
        # Creating a context is the universal entry point to the
        # evaluator, so claim Python stack headroom here.
        ensure_recursion_headroom()
        self._tracing = is_live(self.sink)

    def emit_join(self, site: str, excs: ExcSet) -> None:
        """Report one exception-set union (guard with ``_tracing``)."""
        self.sink.emit(
            EXCSET_JOIN,
            site=site,
            width=len(excs.members),
            infinite=excs.all_synchronous,
        )

    def tick(self) -> bool:
        """Consume one unit of fuel; False when exhausted."""
        self.steps += 1
        if self.fuel <= 0:
            return False
        self.fuel -= 1
        return True


def denote(expr: Expr, env: Env, ctx: DenoteContext) -> SemVal:
    """Compute ``[expr]env`` down to weak head normal form."""
    if not ctx.tick():
        return BOTTOM
    ctx.depth += 1
    if ctx.depth > ctx.max_depth:
        ctx.depth -= 1
        return BOTTOM
    try:
        return _denote(expr, env, ctx)
    finally:
        ctx.depth -= 1


def _denote(expr: Expr, env: Env, ctx: DenoteContext) -> SemVal:
    if isinstance(expr, Var):
        thunk = env.get(expr.name)
        if thunk is None:
            raise InternalError(f"unbound variable {expr.name!r}")
        return thunk.force()

    if isinstance(expr, Lit):
        return Ok(expr.value)

    if isinstance(expr, Lam):
        var, body = expr.var, expr.body

        def call(arg: Thunk, _var=var, _body=body, _env=env) -> SemVal:
            inner = dict(_env)
            inner[_var] = arg
            return denote(_body, inner, ctx)

        return Ok(FunVal(call, label=f"\\{var} -> ..."))

    if isinstance(expr, App):
        fn_val = denote(expr.fn, env, ctx)
        if isinstance(fn_val, Bad):
            # Bad s applied: union in the argument's exceptions, since a
            # strictness-transformed implementation might evaluate the
            # argument first (Section 4.2).
            if not ctx.app_unions_arg:
                return fn_val
            arg_val = denote(expr.arg, env, ctx)
            joined = fn_val.excs | exc_part(arg_val)
            if ctx._tracing:
                ctx.emit_join("app", joined)
            return mk_bad(joined)
        if isinstance(fn_val, Ok) and isinstance(fn_val.value, FunVal):
            arg_expr = expr.arg
            return fn_val.value.apply(
                Thunk(lambda: denote(arg_expr, env, ctx))
            )
        raise InternalError(f"application of a non-function: {fn_val}")

    if isinstance(expr, Con):
        args = tuple(
            Thunk(lambda a=a: denote(a, env, ctx)) for a in expr.args
        )
        return Ok(ConVal(expr.name, args))

    if isinstance(expr, Case):
        return _denote_case(expr, env, ctx)

    if isinstance(expr, Raise):
        return _denote_raise(expr, env, ctx)

    if isinstance(expr, PrimOp):
        return _denote_prim(expr, env, ctx)

    if isinstance(expr, Fix):
        return _denote_fix(expr, env, ctx)

    if isinstance(expr, Let):
        inner: Env = dict(env)
        for name, rhs in expr.binds:
            inner[name] = Thunk(
                lambda r=rhs: denote(r, inner, ctx)
            )
        return denote(expr.body, inner, ctx)

    raise InternalError(f"denote: unknown expression {expr!r}")


# ----------------------------------------------------------------------
# case


def _match_flat(
    pattern: Pattern, value: SemVal, ctx: DenoteContext
) -> Optional[Env]:
    """Match a normal WHNF value against a *flat* pattern.

    Returns a binding environment on success, None on failure.  Nested
    patterns must have been compiled away
    (:func:`repro.lang.match.flatten_case_patterns`).
    """
    if isinstance(pattern, PWild):
        return {}
    if isinstance(pattern, PVar):
        return {pattern.name: Thunk.ready(value)}
    assert isinstance(value, Ok)
    if isinstance(pattern, PLit):
        return {} if value.value == pattern.value else None
    if isinstance(pattern, PCon):
        con = value.value
        if not isinstance(con, ConVal) or con.name != pattern.name:
            return None
        if len(con.args) != len(pattern.args):
            raise InternalError(
                f"constructor arity mismatch in pattern {pattern.name}"
            )
        bindings: Env = {}
        for sub, arg in zip(pattern.args, con.args):
            if isinstance(sub, PVar):
                bindings[sub.name] = arg
            elif not isinstance(sub, PWild):
                raise InternalError(
                    "nested pattern reached denote; run "
                    "flatten_case_patterns first"
                )
        return bindings
    raise InternalError(f"unknown pattern {pattern!r}")


def _denote_case(expr: Case, env: Env, ctx: DenoteContext) -> SemVal:
    scrut = denote(expr.scrutinee, env, ctx)
    if isinstance(scrut, Ok):
        for alt in expr.alts:
            bindings = _match_flat(alt.pattern, scrut, ctx)
            if bindings is not None:
                if bindings:
                    inner = dict(env)
                    inner.update(bindings)
                else:
                    inner = env
                return denote(alt.body, inner, ctx)
        if ctx.provenance is not None:
            ctx.provenance.note(PATTERN_MATCH_FAIL, expr.span)
        return Bad(ExcSet.of(PATTERN_MATCH_FAIL))
    # Exceptional scrutinee.
    assert isinstance(scrut, Bad)
    if ctx.case_mode == "naive":
        return scrut
    # Exception-finding mode (Section 4.3): explore every alternative
    # with pattern variables bound to Bad {} and union the results.
    if ctx._tracing:
        ctx.sink.emit(CASE_EXCEPTION_MODE_ENTER, alts=len(expr.alts))
    result = scrut.excs
    for alt in expr.alts:
        inner = dict(env)
        for name in _flat_pattern_vars(alt.pattern):
            inner[name] = Thunk.ready(BAD_EMPTY)
        branch = denote(alt.body, inner, ctx)
        result = result | exc_part(branch)
    if ctx._tracing:
        ctx.emit_join("case", result)
    return mk_bad(result)


def _flat_pattern_vars(pattern: Pattern) -> Tuple[str, ...]:
    if isinstance(pattern, PVar):
        return (pattern.name,)
    if isinstance(pattern, PCon):
        return tuple(
            sub.name for sub in pattern.args if isinstance(sub, PVar)
        )
    return ()


# ----------------------------------------------------------------------
# raise


def exc_from_conval(
    value: SemVal, ctx: DenoteContext, span=None
) -> SemVal:
    """Convert an ``Exception``-typed denotation into a ``Bad``.

    ``raise``'s rule (Section 4.2): an exceptional argument propagates
    (``Bad s -> Bad s``); a normal ``Exception`` value ``C`` becomes
    ``Bad {C}``.  We force ``UserError``'s message eagerly (the paper
    "neglects the String argument to UserError"; forcing keeps the
    exception printable and is the choice GHC later made for
    ``ErrorCall``).

    ``span`` is the introducing expression's source span: only fresh
    conversions (``C -> Bad {C}``) note an origin — the propagation
    path introduces nothing."""
    if isinstance(value, Bad):
        return value
    assert isinstance(value, Ok)
    con = value.value
    if not isinstance(con, ConVal):
        raise InternalError(f"raise applied to non-Exception: {value}")
    if con.name == "UserError":
        msg_val = con.args[0].force() if con.args else Ok("")
        if isinstance(msg_val, Bad):
            return msg_val
        assert isinstance(msg_val, Ok)
        exc = user_error(str(msg_val.value))
        if ctx.provenance is not None:
            ctx.provenance.note(exc, span)
        return Bad(ExcSet.of(exc))
    synchronous = con.name not in (
        "NonTermination",
        "ControlC",
        "Timeout",
        "StackOverflow",
        "HeapOverflow",
    )
    exc = Exc(con.name, synchronous=synchronous)
    if ctx.provenance is not None:
        ctx.provenance.note(exc, span)
    return Bad(ExcSet.of(exc))


def _denote_raise(expr: Raise, env: Env, ctx: DenoteContext) -> SemVal:
    return exc_from_conval(denote(expr.exc, env, ctx), ctx, expr.span)


def conval_from_exc(exc: Exc) -> ConVal:
    """The inverse direction: reflect a semantic exception back into the
    object-language ``Exception`` data type (used by ``getException``)."""
    if exc.arg is not None:
        return ConVal(exc.name, (Thunk.ready(Ok(exc.arg)),))
    return ConVal(exc.name)


# ----------------------------------------------------------------------
# primitives


def _denote_fix(expr: Fix, env: Env, ctx: DenoteContext) -> SemVal:
    fn_val = denote(expr.fn, env, ctx)
    if isinstance(fn_val, Bad):
        # fix (Bad s): the chain f^k(⊥) never leaves ⊥ (each application
        # unions in S(⊥)), so the fixpoint is ⊥.
        return BOTTOM
    assert isinstance(fn_val, Ok)
    fun = fn_val.value
    if not isinstance(fun, FunVal):
        raise InternalError("fix of a non-function")
    knot: Thunk = Thunk(lambda: fun.apply(knot))
    return knot.force()


def _force_args(
    args: Tuple[Expr, ...], env: Env, ctx: DenoteContext
) -> Tuple[Tuple[SemVal, ...], Optional[Bad]]:
    """Evaluate strict-primitive arguments.

    Returns (values, combined-Bad-or-None) following ``ctx.prim_mode``:
    ``union`` takes the union of all exceptional arguments' sets
    (Section 4.2); ``left-first`` returns the first exceptional argument
    alone (the fixed-evaluation-order baseline).
    """
    values = tuple(denote(a, env, ctx) for a in args)
    if ctx.prim_mode == "left-first":
        for v in values:
            if isinstance(v, Bad):
                return values, v
        return values, None
    combined = EMPTY_SET
    saw_bad = False
    for v in values:
        if isinstance(v, Bad):
            saw_bad = True
            combined = combined | v.excs
    if saw_bad:
        if ctx._tracing:
            ctx.emit_join("prim", combined)
        return values, mk_bad(combined)
    return values, None


def _arith(op: str, a: int, b: int) -> SemVal:
    """The checked arithmetic of Section 4.2 (⊕ with overflow, plus the
    paper's running DivideByZero example)."""
    if op == "+":
        result = a + b
    elif op == "-":
        result = a - b
    elif op == "*":
        result = a * b
    elif op in ("div", "mod"):
        if b == 0:
            return Bad(ExcSet.of(DIVIDE_BY_ZERO))
        result = a // b if op == "div" else a % b
    else:
        raise InternalError(f"unknown arithmetic op {op!r}")
    if not (INT_MIN < result < INT_MAX):
        return Bad(ExcSet.of(OVERFLOW))
    return Ok(result)


_COMPARE: Dict[str, Callable[[object, object], bool]] = {
    "==": lambda a, b: a == b,
    "/=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _denote_prim(expr: PrimOp, env: Env, ctx: DenoteContext) -> SemVal:
    op = expr.op

    # IO constructors are lazy: they build an IOVal without evaluating
    # anything ("evaluating it has no side effects", Section 3.5).
    if op in ("returnIO", "bindIO", "putChar", "putStr", "getException",
              "ioError", "catchIO", "forkIO", "newMVar", "takeMVar",
              "putMVar"):
        payload = tuple(
            Thunk(lambda a=a: denote(a, env, ctx)) for a in expr.args
        )
        tag = {
            "returnIO": "return",
            "bindIO": "bind",
            "putChar": "putChar",
            "putStr": "putStr",
            "getException": "getException",
            "ioError": "ioError",
            "catchIO": "catch",
            "forkIO": "fork",
            "newMVar": "newMVar",
            "takeMVar": "takeMVar",
            "putMVar": "putMVar",
        }[op]
        return Ok(IOVal(tag, payload))
    if op == "getChar":
        return Ok(IOVal("getChar"))
    if op == "newEmptyMVar":
        return Ok(IOVal("newEmptyMVar"))
    if op == "yieldIO":
        return Ok(IOVal("yield"))

    if op == "seq":
        # seq a b  =  case a of _ -> b   (Section 3.2 forcing; the Bad
        # case unions the continuation's exceptions exactly as a
        # one-alternative case would, Section 4.3).
        first = denote(expr.args[0], env, ctx)
        if isinstance(first, Ok):
            return denote(expr.args[1], env, ctx)
        assert isinstance(first, Bad)
        if ctx.case_mode == "naive":
            return first
        rest = denote(expr.args[1], env, ctx)
        joined = first.excs | exc_part(rest)
        if ctx._tracing:
            ctx.emit_join("seq", joined)
        return mk_bad(joined)

    if op == "mapException":
        return _denote_map_exception(expr, env, ctx)

    # All remaining primitives are strict in every argument.
    values, bad = _force_args(expr.args, env, ctx)
    if bad is not None:
        return bad
    unwrapped = tuple(v.value for v in values)  # type: ignore[union-attr]

    if op in ("+", "-", "*", "div", "mod"):
        a, b = unwrapped
        if not isinstance(a, int) or not isinstance(b, int):
            raise InternalError(f"{op} applied to non-integers")
        result = _arith(op, a, b)
        if ctx.provenance is not None and isinstance(result, Bad):
            ctx.provenance.note_set(result.excs, expr.span)
        return result
    if op in ("uadd", "usub", "umul", "udiv", "umod"):
        a, b = unwrapped
        if not isinstance(a, int) or not isinstance(b, int):
            raise InternalError(f"{op} applied to non-integers")
        if op == "uadd":
            return Ok(a + b)
        if op == "usub":
            return Ok(a - b)
        if op == "umul":
            return Ok(a * b)
        if b == 0:
            raise InternalError(
                f"{op} by zero: the encoding must guard divisors"
            )
        return Ok(a // b if op == "udiv" else a % b)
    if op == "unegate":
        (a,) = unwrapped
        assert isinstance(a, int)
        return Ok(-a)
    if op == "negate":
        (a,) = unwrapped
        if not isinstance(a, int):
            raise InternalError("negate applied to a non-integer")
        if not (INT_MIN < -a < INT_MAX):
            if ctx.provenance is not None:
                ctx.provenance.note(OVERFLOW, expr.span)
            return Bad(ExcSet.of(OVERFLOW))
        return Ok(-a)
    if op in _COMPARE:
        a, b = unwrapped
        if isinstance(a, ConVal) or isinstance(b, ConVal):
            raise InternalError(
                f"{op} compares base values only; derive structural "
                "equality in the object language"
            )
        flag = _COMPARE[op](a, b)
        return Ok(ConVal("True" if flag else "False"))
    if op == "strAppend":
        a, b = unwrapped
        return Ok(str(a) + str(b))
    if op == "strLen":
        return Ok(len(str(unwrapped[0])))
    if op == "showInt":
        return Ok(str(unwrapped[0]))
    if op == "ord":
        return Ok(ord(str(unwrapped[0])))
    if op == "chr":
        code = unwrapped[0]
        assert isinstance(code, int)
        if not (0 <= code < 0x110000):
            if ctx.provenance is not None:
                ctx.provenance.note(OVERFLOW, expr.span)
            return Bad(ExcSet.of(OVERFLOW))
        return Ok(chr(code))
    raise InternalError(f"unknown primitive {op!r}")


def _denote_map_exception(
    expr: PrimOp, env: Env, ctx: DenoteContext
) -> SemVal:
    """``mapException f e`` (Section 5.4): applies ``f`` to each member
    of the exception set; does nothing to normal values.  It is pure —
    no IO monad needed — because it hides *which* exception is chosen.

    For infinite sets (``all_synchronous``, in particular ⊥) the image
    is not representable symbolically; we under-approximate with ⊥,
    which is sound for the ``⊑``-based law checks (documented in
    DESIGN.md as a substitution).
    """
    fn_expr, arg_expr = expr.args
    value = denote(arg_expr, env, ctx)
    if isinstance(value, Ok):
        return value
    assert isinstance(value, Bad)
    excs = value.excs
    if not excs.is_finite():
        return BOTTOM
    fn_val = denote(fn_expr, env, ctx)
    if isinstance(fn_val, Bad):
        # The function itself is exceptional; every member's image is
        # unknown, so the whole set collapses to the function's set
        # unioned with the argument's (any order of faults observable).
        return mk_bad(fn_val.excs | excs)
    assert isinstance(fn_val, Ok)
    fun = fn_val.value
    if not isinstance(fun, FunVal):
        raise InternalError("mapException: non-function mapper")
    mapped = EMPTY_SET
    for member in excs.finite_members():
        image = fun.apply(Thunk.ready(Ok(conval_from_exc(member))))
        image_exc = exc_from_conval(image, ctx, expr.span)
        assert isinstance(image_exc, Bad)
        mapped = mapped | image_exc.excs
    return mk_bad(mapped)


# ----------------------------------------------------------------------
# entry points


def base_env() -> Env:
    return {}


def denote_expr(
    expr: Expr,
    env: Optional[Env] = None,
    fuel: int = 200_000,
    ctx: Optional[DenoteContext] = None,
) -> SemVal:
    """Denote a closed (or prelude-closed) expression to WHNF."""
    ensure_recursion_headroom()
    if ctx is None:
        ctx = DenoteContext(fuel=fuel)
    return denote(expr, dict(env) if env else {}, ctx)


def program_env(
    program: Program, ctx: DenoteContext, base: Optional[Env] = None
) -> Env:
    """Build the mutually recursive top-level environment."""
    env: Env = dict(base) if base else {}
    for name, rhs in program.binds:
        env[name] = Thunk(lambda r=rhs: denote(r, env, ctx))
    return env


def denote_program(
    program: Program,
    entry: str = "main",
    fuel: int = 200_000,
    base: Optional[Env] = None,
    ctx: Optional[DenoteContext] = None,
) -> SemVal:
    """Denote one top-level binding of a program."""
    ensure_recursion_headroom()
    if ctx is None:
        ctx = DenoteContext(fuel=fuel)
    env = program_env(program, ctx, base)
    if entry not in env:
        raise InternalError(f"no top-level binding {entry!r}")
    return env[entry].force()
