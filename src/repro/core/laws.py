"""Law checking (Section 4.5).

A *law* relates two expression schemas.  Under the imprecise semantics
a transformation is

* an **identity** when ``[lhs] = [rhs]`` in every tested environment,
* a **refinement** when ``[lhs] ⊑ [rhs]`` (the rewrite may only
  *increase* information — "it is legitimate to perform a transformation
  that increases information"), and
* **unsound** otherwise.

The checker instantiates the schemas' free variables over a battery of
denotations (normal values, exceptional values, ⊥) and compares the
results with :func:`repro.core.ordering.refines`.  It is a testing
semantics: it can refute laws outright and classify the ones that
survive; the classifications for the paper's examples match the paper
(E3/E9, see EXPERIMENTS.md).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.denote import (
    DenoteContext,
    InternalError,
    denote,
    ensure_recursion_headroom,
)
from repro.core.domains import (
    BAD_EMPTY,
    BOTTOM,
    Bad,
    ConVal,
    FunVal,
    Ok,
    SemVal,
    Thunk,
)
from repro.core.excset import (
    DIVIDE_BY_ZERO,
    ExcSet,
    OVERFLOW,
    user_error,
)
from repro.core.ordering import refines
from repro.lang.ast import Expr
from repro.lang.names import free_vars

# A compact but discriminating battery of denotations.  It contains the
# values the paper's own counter-examples need: distinct normal values,
# distinct singleton Bads (error "This" vs error "That"), Bad {} and ⊥.
DEFAULT_BATTERY: Tuple[SemVal, ...] = (
    Ok(0),
    Ok(1),
    Ok(7),
    Ok(ConVal("True")),
    Ok(ConVal("False")),
    Bad(ExcSet.of(DIVIDE_BY_ZERO)),
    Bad(ExcSet.of(user_error("This"))),
    Bad(ExcSet.of(user_error("That"))),
    Bad(ExcSet.of(DIVIDE_BY_ZERO, OVERFLOW)),
    BAD_EMPTY,
    BOTTOM,
)

# Function-valued battery entries, used when a schema variable is
# applied in the law (e.g. the f and g of the case-pushing example).
FUNCTION_BATTERY: Tuple[SemVal, ...] = (
    Ok(FunVal(lambda t: Ok(3), label="\\_ -> 3")),
    Ok(FunVal(lambda t: t.force(), label="id")),
    Ok(FunVal(lambda t: BOTTOM, label="\\_ -> bottom")),
    Ok(
        FunVal(
            lambda t: Bad(ExcSet.of(user_error("F"))),
            label="\\_ -> raise F",
        )
    ),
    Bad(ExcSet.of(user_error("badfun"))),
)

# The paper's own function instantiations for the Section 4.5 example
# (f = g = \v.1): total functions only.  With ⊥-bodied functions in
# scope the app-of-case rewrite is *not* monotone (a reproduction
# finding documented in EXPERIMENTS.md), so the paper-faithful checks
# use this battery.
TOTAL_FUNCTION_BATTERY: Tuple[SemVal, ...] = (
    Ok(FunVal(lambda t: Ok(1), label="\\v -> 1")),
    Ok(FunVal(lambda t: Ok(3), label="\\_ -> 3")),
    Ok(FunVal(lambda t: t.force(), label="id")),
    Bad(ExcSet.of(user_error("badfun"))),
)

# Pair-valued entries for laws whose variables are scrutinised against
# Tuple2 patterns (the Section 4 case-switch example).
PAIR_BATTERY: Tuple[SemVal, ...] = (
    Ok(ConVal("Tuple2", (Thunk.ready(Ok(1)), Thunk.ready(Ok(2))))),
    Ok(
        ConVal(
            "Tuple2",
            (
                Thunk.ready(Bad(ExcSet.of(user_error("inL")))),
                Thunk.ready(Ok(5)),
            ),
        )
    ),
    Ok(ConVal("Tuple2", (Thunk.ready(BOTTOM), Thunk.ready(BOTTOM)))),
    Bad(ExcSet.of(DIVIDE_BY_ZERO)),
    Bad(ExcSet.of(user_error("This"))),
    BAD_EMPTY,
    BOTTOM,
)

# Boolean-valued entries for laws scrutinising True/False.
BOOL_BATTERY: Tuple[SemVal, ...] = (
    Ok(ConVal("True")),
    Ok(ConVal("False")),
    Bad(ExcSet.of(DIVIDE_BY_ZERO)),
    Bad(ExcSet.of(user_error("This"))),
    BAD_EMPTY,
    BOTTOM,
)


@dataclass
class LawReport:
    """The outcome of checking one law over a battery of environments."""

    name: str
    verdict: str  # "identity" | "refinement" | "unsound"
    environments_tested: int
    counterexample: Optional[Dict[str, SemVal]] = None
    lhs_value: Optional[SemVal] = None
    rhs_value: Optional[SemVal] = None

    @property
    def holds(self) -> bool:
        """Is the rewrite lhs -> rhs legitimate (identity or refinement)?"""
        return self.verdict in ("identity", "refinement")

    def __str__(self) -> str:
        text = f"{self.name}: {self.verdict} ({self.environments_tested} envs)"
        if self.counterexample is not None:
            bindings = ", ".join(
                f"{k} = {v}" for k, v in self.counterexample.items()
            )
            text += (
                f"\n  counterexample: {bindings}"
                f"\n  lhs = {self.lhs_value}, rhs = {self.rhs_value}"
            )
        return text


def _batteries_for(
    names: Sequence[str],
    function_vars: Iterable[str],
    battery: Sequence[SemVal],
    var_batteries: Optional[Dict[str, Sequence[SemVal]]] = None,
) -> Iterable[Dict[str, Thunk]]:
    fun_vars = set(function_vars)
    overrides = var_batteries or {}

    def battery_for(name: str) -> Sequence[SemVal]:
        if name in overrides:
            return tuple(overrides[name])
        if name in fun_vars:
            return FUNCTION_BATTERY
        return tuple(battery)

    per_var = [battery_for(name) for name in names]
    for combo in itertools.product(*per_var):
        yield {
            name: Thunk.ready(value) for name, value in zip(names, combo)
        }


def check_law(
    lhs: Expr,
    rhs: Expr,
    name: str = "law",
    battery: Sequence[SemVal] = DEFAULT_BATTERY,
    function_vars: Iterable[str] = (),
    fuel: int = 50_000,
    ctx_factory=None,
    base_env: Optional[Dict[str, Thunk]] = None,
    max_environments: int = 4000,
    var_batteries: Optional[Dict[str, Sequence[SemVal]]] = None,
) -> LawReport:
    """Check ``lhs -> rhs`` over all battery instantiations of the free
    variables shared by the two sides.

    ``ctx_factory`` lets callers check the same law under a different
    semantics (e.g. the fixed-order baseline) by supplying a
    ``DenoteContext`` constructor.  ``var_batteries`` overrides the
    battery per variable — laws are quantified over *well-typed*
    environments, so a variable matched against ``Tuple2`` patterns
    should range over :data:`PAIR_BATTERY`, etc.
    """
    ensure_recursion_headroom()
    names = sorted(free_vars(lhs) | free_vars(rhs))
    if base_env:
        names = [n for n in names if n not in base_env]
    verdict = "identity"
    tested = 0
    for env in _batteries_for(names, function_vars, battery, var_batteries):
        if tested >= max_environments:
            break
        tested += 1
        full_env = dict(base_env) if base_env else {}
        full_env.update(env)
        ctx_l = (
            ctx_factory() if ctx_factory else DenoteContext(fuel=fuel)
        )
        ctx_r = (
            ctx_factory() if ctx_factory else DenoteContext(fuel=fuel)
        )
        try:
            lhs_val = denote(lhs, dict(full_env), ctx_l)
            rhs_val = denote(rhs, dict(full_env), ctx_r)
        except InternalError:
            # This battery instantiation is ill-typed for the schema
            # (e.g. a Bool fed to +); laws are quantified over
            # well-typed environments only.
            tested -= 1
            continue
        forward = refines(lhs_val, rhs_val)
        if not forward:
            return LawReport(
                name,
                "unsound",
                tested,
                counterexample={k: t.force() for k, t in env.items()},
                lhs_value=lhs_val,
                rhs_value=rhs_val,
            )
        if verdict == "identity" and not refines(rhs_val, lhs_val):
            verdict = "refinement"
    return LawReport(name, verdict, tested)


def check_law_source(
    lhs_src: str,
    rhs_src: str,
    name: str = "law",
    **kwargs,
) -> LawReport:
    """Convenience: check a law given as two source strings."""
    from repro.lang.match import flatten_case_patterns
    from repro.lang.parser import parse_expr

    lhs = flatten_case_patterns(parse_expr(lhs_src))
    rhs = flatten_case_patterns(parse_expr(rhs_src))
    return check_law(lhs, rhs, name=name, **kwargs)
