"""The exception-set lattice ``P(E)_⊥`` of Section 4.1.

The paper defines the semantic domain as ``M t = t_⊥ + P(E)_⊥``
(coalesced sum), where ``E`` is the set of all synchronous exceptions
and ``P(E)`` is ordered by *reverse* inclusion::

    S1 ⊑ S2   iff   S1 ⊇ S2

so the bottom element of ``P(E)`` is ``E`` itself (least informative:
"could be anything") and the top element is the empty set ``{}`` (most
informative: "definitely no exception" — the strange value ``Bad {}``
used by ``case``'s exception-finding mode, Section 4.3).  The lattice is
then lifted, and the new bottom is identified with the set of *all*
exceptions plus ``NonTermination``::

    ⊥ = E ∪ {NonTermination}

``E`` is infinite (``UserError`` carries a string), so sets are
represented symbolically: a finite ``frozenset`` of members plus an
``all_synchronous`` flag meaning "every synchronous exception is a
member".  All lattice operations (union, reverse-inclusion order) are
exact under this representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional


@dataclass(frozen=True, order=True)
class Exc:
    """A single exception value.

    ``name`` is the constructor name of the ``Exception`` data type
    (Section 3.1); ``arg`` carries ``UserError``'s string.
    ``synchronous`` means "a member of ``E``, the set of all synchronous
    exceptions".  It is False both for the Section 5.1 asynchronous
    events (interrupts, timeouts, resource exhaustion) and for
    ``NonTermination``, which the paper adds *on top of* ``E`` when
    forming ``⊥ = E ∪ {NonTermination}`` — so neither is ever implied by
    an ``all_synchronous`` set.
    """

    name: str
    arg: Optional[str] = None
    synchronous: bool = True

    def __str__(self) -> str:
        if self.arg is not None:
            return f"{self.name} {self.arg!r}"
        return self.name


DIVIDE_BY_ZERO = Exc("DivideByZero")
OVERFLOW = Exc("Overflow")
PATTERN_MATCH_FAIL = Exc("PatternMatchFail")
NON_TERMINATION = Exc("NonTermination", synchronous=False)

# Asynchronous events (Section 5.1).
CONTROL_C = Exc("ControlC", synchronous=False)
TIMEOUT = Exc("Timeout", synchronous=False)
STACK_OVERFLOW = Exc("StackOverflow", synchronous=False)
HEAP_OVERFLOW = Exc("HeapOverflow", synchronous=False)

ASYNC_EXCEPTIONS = (CONTROL_C, TIMEOUT, STACK_OVERFLOW, HEAP_OVERFLOW)


def user_error(message: str) -> Exc:
    """The exception raised by ``error message`` (Section 3.1)."""
    return Exc("UserError", message)


@dataclass(frozen=True)
class ExcSet:
    """A set of exceptions, possibly infinite.

    The set denoted is ``members ∪ (E if all_synchronous else {})``
    where ``E`` is the set of every synchronous exception.  Note that
    ``NonTermination`` is *not* synchronous-in-``E``: the paper adds it
    as one extra constructor on top of ``E`` when forming ``⊥``, so it
    only enters a set as an explicit member.
    """

    members: FrozenSet[Exc] = frozenset()
    all_synchronous: bool = False

    def __post_init__(self) -> None:
        if self.all_synchronous:
            # Normalise: explicit synchronous members are redundant
            # (they are already implied by the flag).
            kept = frozenset(m for m in self.members if not m.synchronous)
            object.__setattr__(self, "members", kept)

    # -- construction --------------------------------------------------

    @staticmethod
    def of(*excs: Exc) -> "ExcSet":
        return ExcSet(frozenset(excs))

    @staticmethod
    def from_iter(excs: Iterable[Exc]) -> "ExcSet":
        return ExcSet(frozenset(excs))

    # -- queries --------------------------------------------------------

    def __contains__(self, exc: Exc) -> bool:
        if exc in self.members:
            return True
        return self.all_synchronous and exc.synchronous

    def is_empty(self) -> bool:
        return not self.members and not self.all_synchronous

    def is_bottom(self) -> bool:
        """Is this the set identified with ⊥, ``E ∪ {NonTermination}``?"""
        return self.all_synchronous and NON_TERMINATION in self.members

    def is_finite(self) -> bool:
        return not self.all_synchronous

    def finite_members(self) -> FrozenSet[Exc]:
        """The explicitly listed members (all members iff finite)."""
        return self.members

    def witness(self) -> Optional[Exc]:
        """Some member of the set, or None if empty.

        Deterministic (smallest by the derived ordering) so tests are
        reproducible; the *implementation-level* choice of witness is a
        strategy concern, not a semantic one.
        """
        if self.members:
            return min(self.members)
        if self.all_synchronous:
            return DIVIDE_BY_ZERO  # arbitrary canonical inhabitant of E
        return None

    # -- lattice operations ----------------------------------------------

    def union(self, other: "ExcSet") -> "ExcSet":
        """Set union — the combination rule of every strict primitive
        (Section 4.2: ``Bad (S(e1) ∪ S(e2))``)."""
        return ExcSet(
            self.members | other.members,
            self.all_synchronous or other.all_synchronous,
        )

    def intersection(self, other: "ExcSet") -> "ExcSet":
        if self.all_synchronous and other.all_synchronous:
            return ExcSet(
                frozenset(
                    m
                    for m in self.members | other.members
                    if m in self and m in other
                ),
                True,
            )
        if self.all_synchronous:
            return ExcSet(
                frozenset(m for m in other.members if m in self)
            )
        if other.all_synchronous:
            return ExcSet(
                frozenset(m for m in self.members if m in other)
            )
        return ExcSet(self.members & other.members)

    def superset_of(self, other: "ExcSet") -> bool:
        if other.all_synchronous and not self.all_synchronous:
            return False
        return all(m in self for m in other.members)

    def leq(self, other: "ExcSet") -> bool:
        """The information order: ``self ⊑ other`` iff ``self ⊇ other``."""
        return self.superset_of(other)

    def __or__(self, other: "ExcSet") -> "ExcSet":
        return self.union(other)

    def __str__(self) -> str:
        parts = [str(m) for m in sorted(self.members)]
        if self.all_synchronous:
            parts.insert(0, "E")
        return "{" + ", ".join(parts) + "}"


EMPTY_SET = ExcSet()
ALL_EXCEPTIONS = ExcSet(frozenset(), True)
BOTTOM_SET = ExcSet(frozenset((NON_TERMINATION,)), True)


def lub(a: ExcSet, b: ExcSet) -> ExcSet:
    """Least upper bound in the information order = intersection."""
    return a.intersection(b)


def glb(a: ExcSet, b: ExcSet) -> ExcSet:
    """Greatest lower bound in the information order = union."""
    return a.union(b)
