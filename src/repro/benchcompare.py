"""``repro bench`` — re-run the claim benchmarks and gate on drift.

The benchmark suite regenerates the paper's *claims* (E1, E1b, E2,
E13) and records each measured row into ``BENCH_<experiment>.json``
(see ``benchmarks/conftest.py``).  This module closes the loop: run
the suite into a fresh directory, diff the fresh records against the
checked-in seeds (``benchmarks/records/``), print a delta table, and
fail — exit status 1 — when any *deterministic* metric regressed by
more than :data:`REGRESSION_THRESHOLD_PCT` percent.

Wall-clock-derived fields (``*_seconds``, ``speedup*``) are reported
but never gated: they vary with the host, and the repo's performance
claims are counter-based (machine steps, allocations, thunks forced —
all exactly reproducible).  Every excluded field is listed in the
table as ``(not gated)`` rather than silently dropped.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Experiment -> the benchmark file that regenerates it.
EXPERIMENT_SOURCES: Dict[str, str] = {
    "E1": "benchmarks/bench_no_cost.py",
    "E1b": "benchmarks/bench_trace_overhead.py",
    "E2": "benchmarks/bench_explicit_encoding.py",
    "E13": "benchmarks/bench_compiled.py",
    "E16": "benchmarks/bench_warm_serve.py",
    "E18": "benchmarks/bench_superop.py",
    "E19": "benchmarks/bench_telemetry.py",
    "E20": "benchmarks/bench_scheduler.py",
}

#: Where the seed records live (checked in, regenerated with
#: ``repro bench --update``).
DEFAULT_SEED_DIR = "benchmarks/records"

#: A deterministic metric may grow this much (percent) before the
#: gate fails.  Counters are exactly reproducible, so any drift at all
#: is a real behaviour change; the slack exists so a deliberate small
#: change (a few extra steps from a new feature) needs only a seed
#: refresh review, not an emergency.
REGRESSION_THRESHOLD_PCT = 20.0


def _is_wallclock(name: str) -> bool:
    """Fields derived from wall-clock timing — reported, never gated.
    Covers ``*seconds*`` and ``speedup*`` plus the fairness fields E20
    derives from throughput measurements (``jain*``, ``*_ratio``) and
    the generic ``*_wall`` suffix for counts that depend on how much
    wall-clock a measurement window happened to contain."""
    return (
        "seconds" in name
        or name.startswith("speedup")
        or name.startswith("jain")
        or name.endswith("_ratio")
        or name.endswith("_wall")
    )


def _row_key(row: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    """Identify a row by its string-valued fields (workload, axis, ...)."""
    return tuple(
        sorted((k, v) for k, v in row.items() if isinstance(v, str))
    )


def load_records(directory: str) -> Dict[str, List[dict]]:
    """Load every ``BENCH_*.json`` in ``directory`` -> experiment rows."""
    records: Dict[str, List[dict]] = {}
    if not os.path.isdir(directory):
        return records
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        with open(os.path.join(directory, name), encoding="utf-8") as fh:
            data = json.load(fh)
        records[data["experiment"]] = data["rows"]
    return records


@dataclass
class Delta:
    """One compared metric of one row."""

    experiment: str
    row: str  # human row label, e.g. "workload=fib axis=steps"
    metric: str
    seed: Any
    fresh: Any
    pct: Optional[float]  # None when not numeric / seed missing
    gated: bool

    @property
    def regressed(self) -> bool:
        if not self.gated or self.pct is None:
            return False
        return self.pct > REGRESSION_THRESHOLD_PCT


@dataclass
class BenchComparison:
    """The full diff between seed records and a fresh run."""

    deltas: List[Delta] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.problems

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "threshold_pct": REGRESSION_THRESHOLD_PCT,
            "problems": list(self.problems),
            "regressions": [
                {
                    "experiment": d.experiment,
                    "row": d.row,
                    "metric": d.metric,
                    "seed": d.seed,
                    "fresh": d.fresh,
                    "pct": d.pct,
                }
                for d in self.regressions
            ],
            "deltas": [
                {
                    "experiment": d.experiment,
                    "row": d.row,
                    "metric": d.metric,
                    "seed": d.seed,
                    "fresh": d.fresh,
                    "pct": d.pct,
                    "gated": d.gated,
                }
                for d in self.deltas
            ],
        }

    def table(self) -> str:
        lines = [
            f"bench: {len(self.deltas)} metrics compared, "
            f"{len(self.regressions)} regression(s), gate >"
            f"{REGRESSION_THRESHOLD_PCT:g}%"
        ]
        header = ("experiment", "row", "metric", "seed", "fresh", "delta")
        rows = [header]
        for d in self.deltas:
            if d.pct is None:
                delta = "-"
            else:
                delta = f"{d.pct:+.1f}%"
            if not d.gated:
                delta += " (not gated)"
            elif d.regressed:
                delta += "  << REGRESSION"
            rows.append(
                (
                    d.experiment,
                    d.row,
                    d.metric,
                    str(d.seed),
                    str(d.fresh),
                    delta,
                )
            )
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        for row in rows:
            lines.append(
                "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            )
        for problem in self.problems:
            lines.append(f"PROBLEM: {problem}")
        return "\n".join(lines)


def _label(key: Tuple[Tuple[str, str], ...]) -> str:
    return " ".join(f"{k}={v}" for k, v in key) or "<row>"


def compare_records(
    seed: Dict[str, List[dict]], fresh: Dict[str, List[dict]]
) -> BenchComparison:
    """Diff fresh benchmark records against the seeds."""
    comparison = BenchComparison()
    for experiment, seed_rows in sorted(seed.items()):
        fresh_rows = fresh.get(experiment)
        if fresh_rows is None:
            comparison.problems.append(
                f"{experiment}: no fresh records (benchmark did not run?)"
            )
            continue
        fresh_by_key = {_row_key(r): r for r in fresh_rows}
        for seed_row in seed_rows:
            key = _row_key(seed_row)
            fresh_row = fresh_by_key.get(key)
            if fresh_row is None:
                comparison.problems.append(
                    f"{experiment}: row {_label(key)} missing from the "
                    "fresh run"
                )
                continue
            for metric, seed_val in seed_row.items():
                if isinstance(seed_val, str):
                    continue
                fresh_val = fresh_row.get(metric)
                gated = not _is_wallclock(metric)
                pct: Optional[float] = None
                if isinstance(fresh_val, (int, float)) and isinstance(
                    seed_val, (int, float)
                ):
                    if seed_val != 0:
                        pct = 100.0 * (fresh_val - seed_val) / abs(seed_val)
                    elif fresh_val == 0:
                        pct = 0.0
                    else:
                        # A metric whose seed is exactly 0 (e.g. the
                        # E1b overhead) turning nonzero is an infinite
                        # relative regression.
                        pct = float("inf") if fresh_val > 0 else 0.0
                elif gated:
                    comparison.problems.append(
                        f"{experiment}: row {_label(key)} metric "
                        f"{metric} is not comparable "
                        f"({seed_val!r} vs {fresh_val!r})"
                    )
                comparison.deltas.append(
                    Delta(
                        experiment=experiment,
                        row=_label(key),
                        metric=metric,
                        seed=seed_val,
                        fresh=fresh_val,
                        pct=pct,
                        gated=gated,
                    )
                )
    for experiment in sorted(set(fresh) - set(seed)):
        comparison.problems.append(
            f"{experiment}: fresh records have no checked-in seed "
            "(run `repro bench --update`)"
        )
    return comparison


def _pytest_command(files: List[str]) -> List[str]:
    return [
        sys.executable,
        "-m",
        "pytest",
        "--benchmark-disable",
        "-q",
        "-p",
        "no:cacheprovider",
        *files,
    ]


def run_benchmarks(
    out_dir: str,
    experiments: Optional[List[str]] = None,
    repo_root: str = ".",
    jobs: int = 1,
) -> int:
    """Run the claim benchmarks, recording into ``out_dir``.

    Timing plugins are disabled (``--benchmark-disable``): the gate is
    about the claim-shape assertions and the deterministic counters,
    exactly as the CI perf-smoke job runs them.  Returns pytest's exit
    status (the worst one, when running in parallel).

    ``jobs`` > 1 runs up to that many experiments concurrently, one
    pytest subprocess per benchmark file (``jobs=0`` means one worker
    per experiment).  This is safe because each file records a
    distinct ``BENCH_<experiment>.json`` into the shared ``out_dir``,
    and correct because the counters being recorded are deterministic
    per process — a parallel run must produce byte-identical records
    to a serial one.  Worker output is buffered and replayed in
    experiment order, so the console transcript is deterministic too.
    """
    chosen = experiments or sorted(EXPERIMENT_SOURCES)
    unknown = [e for e in chosen if e not in EXPERIMENT_SOURCES]
    if unknown:
        raise ValueError(
            f"unknown experiment(s) {unknown}; "
            f"choose from {sorted(EXPERIMENT_SOURCES)}"
        )
    env = dict(os.environ)
    env["REPRO_BENCH_DIR"] = os.path.abspath(out_dir)

    if jobs == 0:
        jobs = len(chosen)
    if jobs <= 1 or len(chosen) <= 1:
        completed = subprocess.run(
            _pytest_command([EXPERIMENT_SOURCES[e] for e in chosen]),
            cwd=repo_root,
            env=env,
        )
        return completed.returncode

    from concurrent.futures import ThreadPoolExecutor

    def run_one(experiment: str) -> "subprocess.CompletedProcess[bytes]":
        return subprocess.run(
            _pytest_command([EXPERIMENT_SOURCES[experiment]]),
            cwd=repo_root,
            env=env,
            capture_output=True,
        )

    with ThreadPoolExecutor(max_workers=min(jobs, len(chosen))) as pool:
        completed_runs = list(pool.map(run_one, chosen))

    status = 0
    for experiment, completed in zip(chosen, completed_runs):
        sys.stdout.write(f"[{experiment}] ")
        sys.stdout.flush()
        sys.stdout.buffer.write(completed.stdout)
        sys.stdout.flush()
        if completed.returncode != 0:
            sys.stderr.buffer.write(completed.stderr)
            sys.stderr.flush()
            status = max(status, completed.returncode)
    return status
