"""The interrupt-schedule explorer: Section 5.1 soundness, exhaustively.

The paper's asynchronous-exception story makes a strong claim look
casual: "the act of evaluating [an expression] can be interrupted by
an asynchronous exception" — at *any* moment — and the semantics stays
sound.  Concretely, for a pure evaluation that takes ``N`` steps
uninterrupted, scheduling an interrupt at step ``k`` must yield

* the uninterrupted outcome (evaluation finished before the interrupt
  could be delivered — only possible for ``k > N``), or
* an exceptional outcome whose observed member *is* the injected
  exception (pure evaluation has no ``catchIO``, so the interrupt
  cannot be converted into anything else).

Anything else — a different exception, a corrupted value, a hang — is
an implementation bug, exactly the class of bug partial-application of
interrupt masking causes in real runtimes.  :func:`sweep_source` runs
the whole schedule: a fresh machine per delivery point ``k`` in
``[1, N]`` (optionally limited or evenly sampled), on either backend,
and reports every violation.

The same sweep shape generalises to the other two fault axes a
hostile environment has (:mod:`repro.chaos.faults`): **allocation
failure** — sweep the ``HeapOverflow`` threshold over every allocation
count the baseline performs; sound outcomes are the baseline or
``Exceptional(HeapOverflow)`` — and **latency** — sweep an inert
stall over every step; the only sound outcome is the baseline itself,
*and* the stall must demonstrably have fired (a latency fault that
silently vanishes is a scheduler bug).  :func:`sweep_axis` dispatches
on the axis name; ``repro chaos --sweep alloc|latency|all`` runs them.

Because a checker that can never fail proves nothing, the explorer
ships a planted-unsound harness: :func:`self_test` wraps observation
so that one delivery point lies about its outcome, and asserts the
sweep flags exactly that point — on every axis.  ``repro chaos
--self-test`` runs it.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.chaos.faults import ALLOC_FAIL, LATENCY, Fault, FaultPlan
from repro.core.excset import (
    ASYNC_EXCEPTIONS,
    CONTROL_C,
    Exc,
    HEAP_OVERFLOW,
    user_error,
)
from repro.machine.eval import Machine
from repro.machine.observe import (
    Diverged,
    Exceptional,
    Normal,
    Outcome,
    observe,
    show_value,
)

#: Name -> exception, for the CLI's ``--exc`` flag.
ASYNC_BY_NAME = {exc.name: exc for exc in ASYNC_EXCEPTIONS}

#: The fault axes a sweep can walk (``repro chaos --sweep``).
SWEEP_AXES = ("interrupt", "alloc", "latency", "schedule")


@dataclass(frozen=True)
class SweepViolation:
    """One unsound fault point: where the fault was scheduled (a step
    for interrupt/latency, an allocation threshold for alloc), what
    outcomes would have been sound, and what was observed."""

    step: int
    expected: str
    observed: str


#: Axis -> the unit its sweep points are measured in.
_POINT_UNITS = {
    "interrupt": "delivery points",
    "alloc": "alloc thresholds",
    "latency": "stall points",
    "schedule": "schedule points",
}


@dataclass
class SweepReport:
    """The result of one fault sweep on one backend and axis."""

    source: str
    backend: str
    exc: str
    baseline: str
    baseline_steps: int
    points_checked: int
    axis: str = "interrupt"
    violations: List[SweepViolation] = field(default_factory=list)
    #: Wall-clock for the whole sweep (baseline plus every re-run) —
    #: reported under a ``timing`` key so deterministic fields stay
    #: comparable across runs.
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def points_per_second(self) -> float:
        if self.elapsed <= 0.0:
            return 0.0
        return self.points_checked / self.elapsed

    def as_dict(self) -> dict:
        return {
            "source": self.source,
            "backend": self.backend,
            "axis": self.axis,
            "exc": self.exc,
            "baseline": self.baseline,
            "baseline_steps": self.baseline_steps,
            "points_checked": self.points_checked,
            "timing": {
                "elapsed_seconds": round(self.elapsed, 3),
                "points_per_second": round(self.points_per_second, 3),
            },
            "ok": self.ok,
            "violations": [
                {
                    "step": v.step,
                    "expected": v.expected,
                    "observed": v.observed,
                }
                for v in self.violations
            ],
        }

    def render(self) -> str:
        units = _POINT_UNITS.get(self.axis, "points")
        if self.exc:
            injected = self.exc
        elif self.axis == "schedule":
            injected = "slice/seed interleavings"
        else:
            injected = "latency stalls"
        lines = [
            f"chaos sweep [{self.axis}/{self.backend}]: {self.source}",
            f"  baseline: {self.baseline} in {self.baseline_steps} steps",
            f"  injected {injected} at {self.points_checked} {units}: "
            + ("SOUND" if self.ok else f"{len(self.violations)} VIOLATIONS"),
        ]
        for v in self.violations[:20]:
            lines.append(
                f"    step {v.step}: expected {v.expected}, "
                f"observed {v.observed}"
            )
        if len(self.violations) > 20:
            lines.append(
                f"    ... and {len(self.violations) - 20} more"
            )
        if self.elapsed:
            lines.append(
                f"  swept in {self.elapsed:.2f}s "
                f"({self.points_per_second:.1f} points/s)"
            )
        return "\n".join(lines)


def _render_outcome(outcome: Outcome, machine: Machine) -> str:
    """A stable textual form for cross-run comparison (outcomes from
    different machines hold different heap cells, so structural
    equality is useless here)."""
    if isinstance(outcome, Normal):
        try:
            return f"Normal({show_value(outcome.value, machine)})"
        except Exception:  # rendering forces; a lurking raise is fine
            return "Normal(<unrenderable>)"
    return str(outcome)


def _run_once(
    expr,
    backend: str,
    fuel: int,
    event_plan: Optional[dict] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> Tuple[Outcome, Machine]:
    from repro.prelude.loader import machine_env

    machine = Machine(fuel=fuel, event_plan=event_plan, backend=backend)
    if fault_plan is not None:
        machine.attach_fault_plan(fault_plan)
    env = machine_env(machine)
    return observe(expr, env=env, machine=machine), machine


def delivery_points(
    total_steps: int,
    limit: Optional[int] = None,
    sample: Optional[int] = None,
) -> List[int]:
    """Which steps to schedule the interrupt at.  Default: every step
    in ``[1, total_steps]``.  ``limit`` keeps only the first ``limit``
    points; ``sample`` instead picks that many evenly spaced points
    (always including step 1 and the final step — the edge cases)."""
    if total_steps <= 0:
        return []
    if sample is not None and 0 < sample < total_steps:
        if sample == 1:
            return [1]
        stride = (total_steps - 1) / (sample - 1)
        points = {round(1 + i * stride) for i in range(sample)}
        points.add(1)
        points.add(total_steps)
        return sorted(points)
    points_range = range(1, total_steps + 1)
    if limit is not None:
        return list(points_range[:limit])
    return list(points_range)


def sweep_source(
    source: str,
    exc: Exc = CONTROL_C,
    backend: str = "ast",
    fuel: int = 2_000_000,
    limit: Optional[int] = None,
    sample: Optional[int] = None,
    harness: Optional[Callable[[int, Outcome], Outcome]] = None,
) -> SweepReport:
    """Sweep an interrupt over every delivery point of ``source``.

    ``harness`` post-processes each interrupted observation before the
    soundness check — the hook the planted-unsound self-test uses to
    simulate a broken evaluator.  Production sweeps leave it None.
    """
    from repro.api import compile_expr

    started = time.perf_counter()
    expr = compile_expr(source)
    base_outcome, base_machine = _run_once(expr, backend, fuel)
    baseline_steps = base_machine.stats.steps
    baseline = _render_outcome(base_outcome, base_machine)

    expected = f"{baseline} or Exceptional({exc.name})"
    report = SweepReport(
        source=source,
        backend=backend,
        exc=exc.name,
        baseline=baseline,
        baseline_steps=baseline_steps,
        points_checked=0,
    )
    for k in delivery_points(baseline_steps, limit=limit, sample=sample):
        outcome, machine = _run_once(
            expr, backend, fuel, event_plan={k: exc}
        )
        if harness is not None:
            outcome = harness(k, outcome)
        report.points_checked += 1
        if isinstance(outcome, Exceptional) and outcome.exc == exc:
            continue
        observed = _render_outcome(outcome, machine)
        if observed == baseline:
            # Evaluation beat the interrupt to the finish line — sound,
            # though for k <= N it cannot happen on a deterministic
            # machine (the sweep would catch a backend that lets it).
            continue
        report.violations.append(
            SweepViolation(step=k, expected=expected, observed=observed)
        )
    report.elapsed = time.perf_counter() - started
    return report


def sweep_alloc_source(
    source: str,
    backend: str = "ast",
    fuel: int = 2_000_000,
    limit: Optional[int] = None,
    sample: Optional[int] = None,
    harness: Optional[Callable[[int, Outcome], Outcome]] = None,
) -> SweepReport:
    """Sweep the allocation-failure threshold over ``[1, A]`` where
    ``A`` is the baseline run's allocation count.

    At each threshold ``a`` the heap refuses service once ``a`` cells
    are live-allocated (checked at step boundaries, so both backends
    see it identically — :mod:`repro.chaos.faults`).  Sound outcomes:
    ``Exceptional(HeapOverflow)`` — the fault won — or the baseline —
    evaluation finished before a step boundary noticed the exhausted
    heap.  Anything else means resource exhaustion corrupted an
    unrelated part of the evaluation.
    """
    from repro.api import compile_expr

    started = time.perf_counter()
    expr = compile_expr(source)
    base_outcome, base_machine = _run_once(expr, backend, fuel)
    baseline = _render_outcome(base_outcome, base_machine)
    baseline_allocs = base_machine.stats.allocations

    expected = f"{baseline} or Exceptional({HEAP_OVERFLOW.name})"
    report = SweepReport(
        source=source,
        backend=backend,
        axis="alloc",
        exc=HEAP_OVERFLOW.name,
        baseline=baseline,
        baseline_steps=base_machine.stats.steps,
        points_checked=0,
    )
    for a in delivery_points(baseline_allocs, limit=limit, sample=sample):
        plan = FaultPlan((Fault(ALLOC_FAIL, step=1, allocations=a),))
        outcome, machine = _run_once(
            expr, backend, fuel, fault_plan=plan
        )
        if harness is not None:
            outcome = harness(a, outcome)
        report.points_checked += 1
        if isinstance(outcome, Exceptional) and outcome.exc == HEAP_OVERFLOW:
            continue
        observed = _render_outcome(outcome, machine)
        if observed == baseline:
            continue
        report.violations.append(
            SweepViolation(step=a, expected=expected, observed=observed)
        )
    report.elapsed = time.perf_counter() - started
    return report


def sweep_latency_source(
    source: str,
    backend: str = "ast",
    fuel: int = 2_000_000,
    limit: Optional[int] = None,
    sample: Optional[int] = None,
    harness: Optional[Callable[[int, Outcome], Outcome]] = None,
    seconds: float = 0.0,
) -> SweepReport:
    """Sweep an inert stall over every step of the baseline run.

    Latency is the axis where *nothing* is allowed to change: the only
    sound outcome is the baseline, exactly, and the plan must record
    that the stall actually fired (``k ≤ N`` guarantees a step
    boundary reaches it).  ``seconds`` defaults to 0.0 — the schedule
    machinery is exercised without wall-clock cost; production soak
    lanes may pass a real stall to shake out deadline governors.
    """
    from repro.api import compile_expr

    started = time.perf_counter()
    expr = compile_expr(source)
    base_outcome, base_machine = _run_once(expr, backend, fuel)
    baseline = _render_outcome(base_outcome, base_machine)
    baseline_steps = base_machine.stats.steps

    expected = f"{baseline} with the stall recorded"
    report = SweepReport(
        source=source,
        backend=backend,
        axis="latency",
        exc="",
        baseline=baseline,
        baseline_steps=baseline_steps,
        points_checked=0,
    )
    for k in delivery_points(baseline_steps, limit=limit, sample=sample):
        # A 0.0-second stall never calls the clock (faults.py), so the
        # default sweep costs nothing beyond the re-runs themselves.
        plan = FaultPlan((Fault(LATENCY, step=k, seconds=seconds),))
        outcome, machine = _run_once(
            expr, backend, fuel, fault_plan=plan
        )
        if harness is not None:
            outcome = harness(k, outcome)
        report.points_checked += 1
        observed = _render_outcome(outcome, machine)
        fired = any(rec.kind == LATENCY for rec in plan.injected)
        if observed == baseline and fired:
            continue
        if not fired:
            observed = f"{observed} (stall at step {k} never fired)"
        report.violations.append(
            SweepViolation(step=k, expected=expected, observed=observed)
        )
    report.elapsed = time.perf_counter() - started
    return report


# -- the schedule axis -------------------------------------------------

#: The mixed-tenant workload the schedule axis replays: three tenants,
#: every priority class, value/exceptional/recursive shapes — enough
#: interleaving surface that a shared-state bug between concurrently
#: sliced machines has somewhere to show up.
DEFAULT_SCHEDULE_WORKLOAD: Tuple[Tuple[str, str, str], ...] = (
    (
        "alice",
        "interactive",
        "sum (map (\\x -> x * x) (enumFromTo 1 30))",
    ),
    ("bob", "normal", "(1 `div` 0) + 2"),
    (
        "alice",
        "batch",
        "let { f = \\n -> case n < 2 of { True -> n; "
        "False -> f (n - 1) + f (n - 2) } } in f 12",
    ),
    ("carol", "normal", "length (enumFromTo 1 80)"),
    ("bob", "batch", "foldr (\\x acc -> x + acc) 0 (enumFromTo 1 40)"),
)

#: The (slice size × rotation seed) grid the schedule sweep walks.
SCHEDULE_SLICES: Tuple[int, ...] = (1, 7, 64, 1000)
SCHEDULE_SEEDS: Tuple[int, ...] = (0, 1, 2)


def _schedule_bodies(
    scheduler: str,
    slice_steps: int,
    schedule_seed: int,
    workload: Sequence[Tuple[str, str, str]],
    backend: str,
) -> List[dict]:
    """Run the workload through one service configuration and return
    the id-normalised response bodies in submission order.  Cooperative
    services take all requests *concurrently* (otherwise there is
    nothing to interleave); request machines are isolated, so bodies
    must not depend on the schedule."""
    from repro.serve.service import EvalService, ServiceConfig

    config = ServiceConfig(
        backend=backend,
        # Determinism knobs: no deadline/step limits (nothing
        # wall-clock-dependent in a body), no retries, breaker
        # effectively disabled, telemetry off.
        max_steps=None,
        max_allocations=None,
        deadline_seconds=None,
        max_concurrency=max(4, len(workload)),
        queue_depth=len(workload) + 4,
        retries=0,
        breaker_threshold=1_000_000,
        telemetry=False,
        scheduler=scheduler,
        workers=2,
        slice_steps=slice_steps,
        schedule_seed=schedule_seed,
    )
    service = EvalService(config)
    try:
        bodies: List[Optional[dict]] = [None] * len(workload)

        def call(index: int, tenant: str, priority: str, src: str):
            _, body, _ = service.handle(
                {"expr": src, "tenant": tenant, "priority": priority}
            )
            body.pop("request_id", None)
            body.pop("trace_id", None)
            bodies[index] = body

        if scheduler == "cooperative":
            threads = [
                threading.Thread(target=call, args=(i, t, p, s))
                for i, (t, p, s) in enumerate(workload)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        else:
            for i, (t, p, s) in enumerate(workload):
                call(i, t, p, s)
        return bodies  # type: ignore[return-value]
    finally:
        service.close()


def sweep_schedule(
    backend: str = "ast",
    workload: Optional[Sequence[Tuple[str, str, str]]] = None,
    slice_sizes: Sequence[int] = SCHEDULE_SLICES,
    seeds: Sequence[int] = SCHEDULE_SEEDS,
    harness: Optional[Callable[[int, List[dict]], List[dict]]] = None,
) -> SweepReport:
    """Sweep the cooperative scheduler's interleaving space.

    The baseline is the threaded service's response bodies for a
    mixed-tenant workload; each sweep point replays the same workload
    through a cooperative service at one (slice size, rotation seed)
    grid cell, with all requests in flight at once.  Sound outcome:
    **byte-identical bodies** (ids normalised) at every point — the
    request machines share no mutable state, so any schedule-dependent
    observable is a real isolation bug, the service-level analogue of
    an unsound interrupt delivery.

    ``harness`` post-processes each point's body list (the hook the
    planted-unsound self-test uses); production sweeps leave it None.
    """
    started = time.perf_counter()
    workload = list(workload or DEFAULT_SCHEDULE_WORKLOAD)
    baseline_bodies = _schedule_bodies(
        "threads", 0, 0, workload, backend
    )
    total_steps = sum(
        body.get("stats", {}).get("steps", 0)
        for body in baseline_bodies
    )
    report = SweepReport(
        source=f"<mixed-tenant workload: {len(workload)} requests>",
        backend=backend,
        axis="schedule",
        exc="",
        baseline=f"{len(workload)} threaded response bodies",
        baseline_steps=total_steps,
        points_checked=0,
    )
    expected = "byte-identical bodies vs threaded baseline"
    point = 0
    for slice_steps in slice_sizes:
        for seed in seeds:
            point += 1
            bodies = _schedule_bodies(
                "cooperative", slice_steps, seed, workload, backend
            )
            if harness is not None:
                bodies = harness(point, bodies)
            report.points_checked += 1
            if bodies == baseline_bodies:
                continue
            diverged = [
                i
                for i, (got, want) in enumerate(
                    zip(bodies, baseline_bodies)
                )
                if got != want
            ]
            first = json.dumps(
                bodies[diverged[0]], sort_keys=True
            ) if diverged else "<missing>"
            report.violations.append(
                SweepViolation(
                    step=point,
                    expected=expected,
                    observed=(
                        f"slice={slice_steps} seed={seed}: requests "
                        f"{diverged} diverged; first: {first[:300]}"
                    ),
                )
            )
    report.elapsed = time.perf_counter() - started
    return report


def sweep_axis(
    axis: str,
    source: str,
    exc: Exc = CONTROL_C,
    backend: str = "ast",
    fuel: int = 2_000_000,
    limit: Optional[int] = None,
    sample: Optional[int] = None,
    harness: Optional[Callable[[int, Outcome], Outcome]] = None,
) -> SweepReport:
    """Dispatch one sweep by axis name (``exc`` only applies to the
    interrupt axis; alloc always delivers ``HeapOverflow`` and latency
    delivers nothing; schedule ignores ``source`` — it replays the
    built-in mixed-tenant workload)."""
    if axis == "schedule":
        return sweep_schedule(backend=backend)
    if axis == "interrupt":
        return sweep_source(
            source, exc=exc, backend=backend, fuel=fuel,
            limit=limit, sample=sample, harness=harness,
        )
    if axis == "alloc":
        return sweep_alloc_source(
            source, backend=backend, fuel=fuel,
            limit=limit, sample=sample, harness=harness,
        )
    if axis == "latency":
        return sweep_latency_source(
            source, backend=backend, fuel=fuel,
            limit=limit, sample=sample, harness=harness,
        )
    raise ValueError(
        f"unknown sweep axis {axis!r}; expected one of {SWEEP_AXES}"
    )


# -- the planted-unsound self-test -------------------------------------

#: The obviously-wrong outcome the plant reports: a synchronous user
#: exception no pure interrupt sweep could legitimately observe.
_PLANT_EXC = user_error("chaos-plant")


def plant_unsound(at_step: int) -> Callable[[int, Outcome], Outcome]:
    """A harness that lies at exactly one delivery point, simulating an
    evaluator that mangles an interrupt into a different exception."""

    def harness(step: int, outcome: Outcome) -> Outcome:
        if step == at_step:
            return Exceptional(_PLANT_EXC)
        return outcome

    return harness


def plant_unsound_schedule(
    at_point: int,
) -> Callable[[int, List[dict]], List[dict]]:
    """The schedule axis' plant: at exactly one grid cell, corrupt the
    first response body — simulating a scheduler whose interleaving
    leaked state between request machines."""

    def harness(point: int, bodies: List[dict]) -> List[dict]:
        if point == at_point and bodies:
            bodies = list(bodies)
            bodies[0] = {
                "status": "exceptional",
                "exc": "chaos-plant",
                "synchronous": True,
            }
        return bodies

    return harness


#: Per-axis default self-test programs.  The interrupt and latency
#: axes sweep steps, which any arithmetic has; the alloc axis sweeps
#: allocation thresholds, so its program must actually allocate.
_SELF_TEST_SOURCES = {
    "interrupt": "1 + 2 * 3",
    "alloc": "let { x = 1 + 2 ; y = x + x } in y * y",
    "latency": "1 + 2 * 3",
}


def self_test(
    backend: str = "ast",
    source: Optional[str] = None,
    fuel: int = 2_000_000,
    axis: str = "interrupt",
) -> Tuple[bool, SweepReport]:
    """Prove the checker can fail: sweep a small program with a plant
    at the middle sweep point and require the sweep to flag exactly
    that point (and nothing else).  Works on every fault axis — the
    plant substitutes an outcome no axis could soundly observe (a
    synchronous user exception).  Returns ``(passed, report)`` where
    ``passed`` means the plant *was* caught."""
    from repro.api import compile_expr

    if axis == "schedule":
        total = len(SCHEDULE_SLICES) * len(SCHEDULE_SEEDS)
        plant_at = max(1, total // 2)
        report = sweep_schedule(
            backend=backend,
            harness=plant_unsound_schedule(plant_at),
        )
        caught = (
            len(report.violations) == 1
            and report.violations[0].step == plant_at
            and "chaos-plant" in report.violations[0].observed
        )
        return caught, report

    if source is None:
        source = _SELF_TEST_SOURCES.get(axis, "1 + 2 * 3")
    expr = compile_expr(source)
    _, machine = _run_once(expr, backend, fuel)
    if axis == "alloc":
        horizon = machine.stats.allocations
    else:
        horizon = machine.stats.steps
    plant_at = max(1, horizon // 2)
    report = sweep_axis(
        axis,
        source,
        backend=backend,
        fuel=fuel,
        harness=plant_unsound(plant_at),
    )
    caught = (
        len(report.violations) == 1
        and report.violations[0].step == plant_at
        and "chaos-plant" in report.violations[0].observed
    )
    return caught, report
