"""Chaos engineering for the evaluators (Section 5.1, weaponised).

The paper's treatment of asynchronous exceptions is an invariant in
disguise: an interrupt may arrive at *any* step, and whenever it does,
the observation must either be the uninterrupted outcome (evaluation
won the race) or an exceptional outcome carrying the injected
exception — never a corrupted value, never a hang, never a different
exception invented by the implementation.  This package turns that
invariant into an executable harness:

``repro.chaos.faults``
    Deterministic fault plans: seeded schedules of interrupts,
    allocation failures and artificial latency, consulted by the
    machine at step boundaries (``Machine.attach_fault_plan``) and
    delivered through the same ``AsyncInterrupt`` path as the
    Section 5.1 event plan.

``repro.chaos.explore``
    The interrupt-schedule explorer behind ``repro chaos``: evaluate a
    program once uninterrupted, then once per delivery point with an
    interrupt scheduled exactly there, asserting the soundness
    property at every point — on both backends.  A planted-unsound
    harness (``--self-test``) proves the checker can actually fail.
"""

from repro.chaos.faults import (
    ALLOC_FAIL,
    FAULT_KINDS,
    Fault,
    FaultPlan,
    INTERRUPT,
    InjectedFault,
    LATENCY,
)
from repro.chaos.explore import (
    SweepReport,
    SweepViolation,
    self_test,
    sweep_source,
)

__all__ = [
    "ALLOC_FAIL",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "INTERRUPT",
    "InjectedFault",
    "LATENCY",
    "SweepReport",
    "SweepViolation",
    "self_test",
    "sweep_source",
]
