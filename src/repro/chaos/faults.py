"""Deterministic fault plans: what to break, and exactly when.

A :class:`FaultPlan` is the chaos-engineering generalisation of the
Section 5.1 :class:`~repro.io.events.EventPlan`.  Where an event plan
schedules *which* asynchronous exception arrives at *which* step, a
fault plan also models the two other ways a real runtime environment
misbehaves:

* **allocation failure** — the heap refuses service once a program has
  allocated enough cells; delivered as ``HeapOverflow``, the paper's
  canonical fictitious exception for exhausted resources;
* **artificial latency** — a wall-clock stall at a step boundary, the
  fault that trips deadline governors and exercises retry paths
  without making anything *semantically* wrong.

Faults are consulted by ``Machine._tick_slow`` (attach with
``Machine.attach_fault_plan``), so injection happens at step
boundaries on both backends identically, and every injected exception
travels the ordinary ``AsyncInterrupt`` path — fault injection is
observationally indistinguishable from a genuinely hostile
environment, which is the point.

Determinism is non-negotiable: a plan is a pure function of its seed
(or its explicit fault list), so every chaotic run can be replayed
exactly.  The plan records what actually fired (``injected``) for
post-run assertions.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.excset import (
    ASYNC_EXCEPTIONS,
    CONTROL_C,
    Exc,
    HEAP_OVERFLOW,
)
from repro.io.events import EventPlan

#: Deliver an asynchronous exception at a step boundary.
INTERRUPT = "interrupt"

#: Refuse further allocation: ``HeapOverflow`` once the allocation
#: counter reaches a threshold (checked at step boundaries, so the two
#: backends — one of which inlines allocation — behave identically).
ALLOC_FAIL = "alloc-fail"

#: Stall the evaluator for a moment without raising anything.
LATENCY = "latency"

FAULT_KINDS = (INTERRUPT, ALLOC_FAIL, LATENCY)


@dataclass(frozen=True)
class Fault:
    """One scheduled misbehaviour.

    ``step`` arms the fault: it cannot fire before the machine's step
    counter reaches it.  For :data:`ALLOC_FAIL`, ``allocations`` is the
    real trigger — the fault fires at the first armed step boundary
    where ``stats.allocations`` has reached it.  ``exc`` is the
    exception an :data:`INTERRUPT` delivers (default ``ControlC``;
    alloc failures always deliver ``HeapOverflow``).  ``seconds`` is
    the stall a :data:`LATENCY` fault injects.
    """

    kind: str
    step: int = 1
    exc: Optional[Exc] = None
    allocations: int = 0
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )


@dataclass(frozen=True)
class InjectedFault:
    """The record of one fault that actually fired: its kind, the step
    it was delivered on, the exception name (None for latency) and the
    stall length (0.0 for everything else)."""

    kind: str
    step: int
    exc: Optional[str] = None
    seconds: float = 0.0


class FaultPlan:
    """A replayable schedule of faults, consumed by one machine run.

    The plan is stateful while running (fired faults are spent;
    ``injected`` accumulates the delivery record), so a plan instance
    belongs to exactly one evaluation.  Use :meth:`fresh` to get an
    unspent copy for the next run — the service does this per request.

    ``sleep`` is the clock used for latency faults; tests inject a fake
    to keep the suite fast.
    """

    def __init__(
        self,
        faults: Sequence[Fault] = (),
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.faults: Tuple[Fault, ...] = tuple(faults)
        # Latency sorts first within a step: a stall *precedes* any
        # exception delivered at the same boundary (the interrupt
        # unwinds evaluation, so anything after it never fires).
        self._pending: List[Fault] = sorted(
            self.faults,
            key=lambda f: (f.step, 0 if f.kind == LATENCY else 1, f.kind),
        )
        self.injected: List[InjectedFault] = []
        self._sleep = sleep

    # -- construction ---------------------------------------------------

    @classmethod
    def from_events(
        cls,
        plan: EventPlan,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "FaultPlan":
        """Bridge from a Section 5.1 event plan: each scheduled event
        becomes an :data:`INTERRUPT` fault at its step."""
        return cls(
            tuple(
                Fault(INTERRUPT, step=step, exc=exc)
                for step, exc in plan.schedule
            ),
            sleep=sleep,
        )

    @classmethod
    def seeded(
        cls,
        seed: int,
        horizon: int,
        interrupts: int = 1,
        latencies: int = 0,
        max_latency: float = 0.002,
        alloc_fail_after: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "FaultPlan":
        """A deterministic random plan: ``interrupts`` asynchronous
        exceptions and ``latencies`` stalls at seeded steps in
        ``[1, horizon]``, plus (optionally) an allocation failure once
        ``alloc_fail_after`` cells have been allocated.  The same seed
        always builds the same plan."""
        rng = random.Random(seed)
        faults: List[Fault] = []
        for _ in range(interrupts):
            faults.append(
                Fault(
                    INTERRUPT,
                    step=rng.randint(1, max(1, horizon)),
                    exc=rng.choice(ASYNC_EXCEPTIONS),
                )
            )
        for _ in range(latencies):
            faults.append(
                Fault(
                    LATENCY,
                    step=rng.randint(1, max(1, horizon)),
                    seconds=rng.uniform(0.0, max_latency),
                )
            )
        if alloc_fail_after is not None:
            faults.append(
                Fault(ALLOC_FAIL, step=1, allocations=alloc_fail_after)
            )
        return cls(tuple(faults), sleep=sleep)

    def fresh(self) -> "FaultPlan":
        """An unspent copy of this plan (same schedule, empty record)."""
        return FaultPlan(self.faults, sleep=self._sleep)

    # -- the machine-facing hook ----------------------------------------

    def on_step(self, machine) -> Optional[Exc]:
        """Consulted by ``Machine._tick_slow`` once per step: fire every
        fault whose trigger has been reached.  Latency faults stall and
        the scan continues; the first exception-bearing fault wins the
        step (the machine delivers it as an ``AsyncInterrupt``)."""
        stats = machine.stats
        pending = self._pending
        i = 0
        while i < len(pending):
            fault = pending[i]
            if stats.steps < fault.step:
                i += 1
                continue
            if fault.kind == ALLOC_FAIL and (
                stats.allocations < fault.allocations
            ):
                i += 1
                continue
            del pending[i]
            if fault.kind == LATENCY:
                self.injected.append(
                    InjectedFault(
                        LATENCY, stats.steps, seconds=fault.seconds
                    )
                )
                if fault.seconds > 0:
                    self._sleep(fault.seconds)
                continue
            exc = fault.exc
            if exc is None:
                exc = HEAP_OVERFLOW if fault.kind == ALLOC_FAIL else CONTROL_C
            self.injected.append(
                InjectedFault(fault.kind, stats.steps, exc=exc.name)
            )
            return exc
        return None

    # -- inspection -----------------------------------------------------

    @property
    def spent(self) -> bool:
        """True when every scheduled fault has fired."""
        return not self._pending

    def as_dict(self) -> dict:
        return {
            "faults": [
                {
                    "kind": f.kind,
                    "step": f.step,
                    "exc": f.exc.name if f.exc is not None else None,
                    "allocations": f.allocations,
                    "seconds": f.seconds,
                }
                for f in self.faults
            ],
            "injected": [
                {
                    "kind": rec.kind,
                    "step": rec.step,
                    "exc": rec.exc,
                    "seconds": rec.seconds,
                }
                for rec in self.injected
            ],
        }
