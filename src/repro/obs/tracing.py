"""Request-scoped structured tracing: span trees per evaluation.

A **trace** is one request's causal story — admission → breaker →
cache lookup → snapshot fork → governor-attached machine run → retry
attempts → response render — as a tree of timed **spans**.  Spans are
decorations in the same sense as the PR-1 sinks: they observe the
serving pipeline but can never perturb it (a span carries the
machine's deterministic counters and the exceptional-set summary
*after* the fact; it never reaches into the machine).

Determinism contract: ``trace_id``s are allocated by the caller from a
plain monotonic sequence (``EvalService`` does this under its lock),
**not** from randomness or wall time, so two services fed the same
request sequence mint identical ids — which is what keeps the
warm/cold byte-identical-response parity suite meaningful with ids in
the bodies.  All timestamps come from the injectable clock.

Export: a completed trace lands in a bounded in-memory ring
(:class:`TraceRecorder`, the flight-recorder view served to tests and
``service.get_trace``) and, opt-in, in a JSONL file via the PR-1
:class:`~repro.obs.sinks.JsonlSink` — one ``trace`` event per request,
replayable with :func:`~repro.obs.sinks.read_trace`.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.obs.sinks import TraceSink, is_live

__all__ = [
    "NULL_TRACE_BUILDER",
    "NullTraceBuilder",
    "Span",
    "Trace",
    "TraceBuilder",
    "TraceRecorder",
    "format_trace_id",
]


def format_trace_id(seq: int) -> str:
    """Sequence number -> opaque id.  16 hex chars, zero-padded:
    stable, sortable, and obviously not a secret."""
    return f"{seq:016x}"


class Span:
    """One timed stage.  ``attrs`` carry whatever the stage learned
    (cache hit?, machine counters, trip reason); ``children`` nest."""

    __slots__ = ("name", "start", "end", "attrs", "children")

    def __init__(self, name: str, start: float) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = {}
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "name": self.name,
            "duration_seconds": round(self.duration, 9),
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if self.children:
            record["children"] = [c.as_dict() for c in self.children]
        return record


class Trace:
    """A finished span tree plus its identity."""

    def __init__(
        self,
        trace_id: str,
        request_id: int,
        root: Span,
        parent: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id
        self.request_id = request_id
        self.root = root
        self.parent = parent

    def span_names(self) -> List[str]:
        """Depth-first span names — the shape tests assert on."""
        names: List[str] = []

        def walk(span: Span) -> None:
            names.append(span.name)
            for child in span.children:
                walk(child)

        walk(self.root)
        return names

    def find(self, name: str) -> Optional[Span]:
        stack = [self.root]
        while stack:
            span = stack.pop()
            if span.name == name:
                return span
            stack.extend(reversed(span.children))
        return None

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "spans": self.root.as_dict(),
        }
        if self.parent is not None:
            record["parent"] = self.parent
        return record


class TraceBuilder:
    """Build one request's span tree against an injectable clock.

    Not thread-safe by design: a builder belongs to exactly one
    request, which the service pipeline handles on one thread.  The
    root span opens at construction; ``span`` nests via a stack;
    ``finish`` closes anything still open (crash-safe: a span tree is
    always complete) and freezes the :class:`Trace`.
    """

    def __init__(
        self,
        trace_id: str,
        request_id: int,
        clock: Callable[[], float],
        root_name: str = "request",
        parent: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id
        self.request_id = request_id
        self._clock = clock
        self._root = Span(root_name, clock())
        self._stack: List[Span] = [self._root]
        self._parent = parent
        self._finished: Optional[Trace] = None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        span = Span(name, self._clock())
        if attrs:
            span.attrs.update(attrs)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end = self._clock()
            self._stack.pop()

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span."""
        self._stack[-1].attrs.update(attrs)

    def finish(self) -> Trace:
        if self._finished is not None:
            return self._finished
        now = self._clock()
        for span in self._stack:
            if span.end is None:
                span.end = now
        self._stack = [self._root]
        self._finished = Trace(
            self.trace_id, self.request_id, self._root, self._parent
        )
        return self._finished


class NullTraceBuilder:
    """The telemetry-off builder: every method a no-op, so the serving
    pipeline stays branch-free.  Notably it never reads the clock —
    clock-sensitive resilience tests see the same read sequence as a
    build without tracing."""

    trace_id = ""
    request_id = 0

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        yield None

    def annotate(self, **attrs: Any) -> None:
        pass

    def finish(self) -> None:
        return None


NULL_TRACE_BUILDER = NullTraceBuilder()


class TraceRecorder:
    """Bounded ring of completed traces + optional streaming sink.

    The ring answers "what just happened" (``service.get_trace``); the
    sink — any PR-1 :class:`TraceSink`, typically a ``JsonlSink`` —
    gets one ``trace`` event per completed request for offline
    analysis.  Thread-safe; recording never raises.
    """

    def __init__(
        self,
        capacity: int = 256,
        sink: Optional[TraceSink] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("trace ring capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: "deque[Trace]" = deque(maxlen=capacity)
        self._by_id: Dict[str, Trace] = {}
        self._recorded = 0
        self._sink = sink if is_live(sink) else None

    def record(self, trace: Optional[Trace]) -> None:
        if trace is None:
            return
        with self._lock:
            if len(self._ring) == self.capacity:
                evicted = self._ring[0]
                self._by_id.pop(evicted.trace_id, None)
            self._ring.append(trace)
            self._by_id[trace.trace_id] = trace
            self._recorded += 1
        if self._sink is not None:
            self._sink.emit("trace", **trace.as_dict())

    def get(self, trace_id: str) -> Optional[Trace]:
        with self._lock:
            return self._by_id.get(trace_id)

    @property
    def traces(self) -> List[Trace]:
        with self._lock:
            return list(self._ring)

    @property
    def recorded(self) -> int:
        with self._lock:
            return self._recorded

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
