"""Span-level cost attribution: who is paying for what.

A :class:`SpanProfiler` is an ordinary :class:`~repro.obs.sinks.TraceSink`
— attach it like any other — that reconstructs the machine's *force
stack* from the paired ``force``/``force-end`` events (each carrying
the forced expression's source span) and charges every ``step``,
``alloc``, ``raise`` and ``prim-raise`` to the span on top of that
stack (raises with a known site are charged there).  Work done
outside any thunk (the initial demand on the root expression) is
charged to the synthetic root frame ``<top>``.

Because it is driven purely by the event stream, and the two machine
backends emit byte-identical streams (docs/PERFORMANCE.md), attribution
is automatically backend-independent — the parity tests in
``tests/machine/test_backends.py`` lock this in.

Two outputs:

* ``totals`` — per-span aggregates (steps/allocs/forces/raises), the
  table ``repro profile`` prints;
* ``folded`` — steps per *stack of spans*, in the folded-stacks format
  Brendan Gregg's ``flamegraph.pl`` (and every compatible viewer)
  consumes: one line per distinct stack, frames separated by ``;``,
  the sample count (here: machine steps) last.  ``repro profile
  --flame out.folded`` writes it.

With ``decisions=True`` each folded frame additionally carries the
strategy-decision index at which it was entered — ``<span>@d<N>``
where ``N`` is the machine's ``prim_ops`` counter when the force
began (the same decision clock raise provenance records).  That
answers *why* a frame was entered — after which scheduling decision —
not just that it was.  The index rides on the ``force`` event itself
(emitted by the shared ``Cell.force``), so decorated stacks are
byte-identical across backends.  Per-span ``totals`` stay
undecorated: aggregation by site is unaffected.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.obs.events import (
    ALLOC,
    FORCE,
    FORCE_END,
    PRIM_RAISE,
    RAISE,
    STEP,
)

#: The synthetic frame charged for work outside any in-flight force.
ROOT = "<top>"

#: The frame label for a forced expression that carries no source span
#: (synthesised nodes, prelude internals compiled before spans existed).
NO_SPAN = "<no-span>"

_COUNTER_KEYS = ("steps", "allocs", "forces", "raises")


class SpanProfiler:
    """Aggregate machine cost per source span (a trace sink).

    ``totals`` maps a span label (``str(Span)``, or :data:`NO_SPAN`,
    or :data:`ROOT`) to its counter dict; ``folded`` maps a stack of
    labels — root first — to the number of machine steps sampled with
    exactly that stack in flight.  ``decisions=True`` decorates the
    folded frames (only) with the strategy-decision index at frame
    entry: ``<label>@d<N>``.
    """

    def __init__(self, decisions: bool = False) -> None:
        self.decisions = decisions
        self.totals: Dict[str, Dict[str, int]] = {}
        self.folded: Dict[Tuple[str, ...], int] = {}
        # Each in-flight frame is (base_label, folded_label): totals
        # aggregate on the base, folded stacks use the (optionally
        # decision-decorated) folded form.
        self._stack: List[Tuple[str, str]] = []

    # -- sink protocol --------------------------------------------------

    def emit(self, name: str, **fields: Any) -> None:
        if name == STEP:
            stack = self._stack
            label = stack[-1][0] if stack else ROOT
            self._bump(label, "steps")
            key = (ROOT, *(frame for _base, frame in stack))
            self.folded[key] = self.folded.get(key, 0) + 1
        elif name == FORCE:
            span = fields.get("span")
            label = str(span) if span is not None else NO_SPAN
            frame = label
            if self.decisions:
                frame = f"{label}@d{fields.get('decision', 0)}"
            self._stack.append((label, frame))
            self._bump(label, "forces")
        elif name == FORCE_END:
            if self._stack:
                self._stack.pop()
        elif name == ALLOC:
            stack = self._stack
            self._bump(stack[-1][0] if stack else ROOT, "allocs")
        elif name == RAISE or name == PRIM_RAISE:
            # A raise is charged to its own site when known; otherwise
            # to the frame it unwound from.  Primitive-originated
            # exceptions (div-by-zero, overflow — the `prim-raise`
            # event) carry the primitive application's span, so the
            # checked ``⊕`` that actually failed gets the charge, not
            # whichever thunk happened to be forcing it.
            span = fields.get("span")
            if span is not None:
                label = str(span)
            else:
                label = self._stack[-1][0] if self._stack else ROOT
            self._bump(label, "raises")

    def close(self) -> None:
        pass

    # -- outputs --------------------------------------------------------

    def _bump(self, label: str, key: str) -> None:
        counters = self.totals.get(label)
        if counters is None:
            counters = dict.fromkeys(_COUNTER_KEYS, 0)
            self.totals[label] = counters
        counters[key] += 1

    def folded_lines(self) -> List[str]:
        """The folded-stacks rendering, deterministically ordered."""
        return [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.folded.items())
        ]

    def table_rows(self) -> List[Tuple[str, Dict[str, int]]]:
        """Per-span totals, hottest (most steps) first; ties break on
        the label so output is deterministic."""
        return sorted(
            self.totals.items(), key=lambda kv: (-kv[1]["steps"], kv[0])
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "totals": {
                label: dict(counters)
                for label, counters in sorted(self.totals.items())
            },
            "folded": {
                ";".join(stack): count
                for stack, count in sorted(self.folded.items())
            },
        }
