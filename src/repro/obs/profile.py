"""The ``repro profile`` engine.

Runs an expression under a counting sink — on the lazy machine, the
denotational evaluator, or both — with per-phase wall-clock timers,
and renders the result as a table or JSON.  An optional JSONL sink
streams the full event sequence for offline analysis.

Measurement discipline: the prelude environment is built *before* the
sink is attached and stats are reset, so the report covers the
expression's own cost, not setup; and the outcome is rendered (which
may force further structure) only *after* counters are snapshotted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.obs.attribution import SpanProfiler
from repro.obs.events import (
    CASE_EXCEPTION_MODE_ENTER,
    EXCSET_JOIN,
)
from repro.obs.sinks import CountingSink, JsonlSink, TeeSink, TraceSink

LAYERS = ("machine", "denote", "both")

#: How many spans the table rendering shows before eliding; the JSON
#: form and the folded-stack file always carry everything.
_TABLE_SPAN_LIMIT = 15


@dataclass
class ProfileReport:
    """Everything one profiling run measured."""

    source: str
    layer: str
    backend: str = "ast"  # which machine evaluator produced the numbers
    outcome: Optional[str] = None  # machine observation, rendered
    denotation: Optional[str] = None  # denoted SemVal, rendered
    machine_stats: Optional[Dict[str, int]] = None
    denote_stats: Optional[Dict[str, int]] = None
    events: Dict[str, int] = field(default_factory=dict)
    set_width_histogram: Dict[int, int] = field(default_factory=dict)
    phases: Dict[str, float] = field(default_factory=dict)
    trace_path: Optional[str] = None
    span_totals: Optional[Dict[str, Dict[str, int]]] = None
    flame_path: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "source": self.source,
            "layer": self.layer,
            "backend": self.backend,
            "events": dict(sorted(self.events.items())),
            "phases": {k: round(v, 6) for k, v in self.phases.items()},
        }
        if self.outcome is not None:
            data["outcome"] = self.outcome
        if self.machine_stats is not None:
            data["machine_stats"] = self.machine_stats
        if self.denotation is not None:
            data["denotation"] = self.denotation
        if self.denote_stats is not None:
            data["denote_stats"] = self.denote_stats
        if self.set_width_histogram:
            data["set_width_histogram"] = {
                str(w): n
                for w, n in sorted(self.set_width_histogram.items())
            }
        if self.trace_path is not None:
            data["trace_path"] = self.trace_path
        if self.span_totals is not None:
            data["span_totals"] = {
                label: dict(counters)
                for label, counters in sorted(self.span_totals.items())
            }
        if self.flame_path is not None:
            data["flame_path"] = self.flame_path
        return data

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2)

    def to_table(self) -> str:
        lines = [
            f"profile  {self.source}",
            f"layer    {self.layer}",
            f"backend  {self.backend}",
        ]

        def section(title: str, rows: Dict[str, Any]) -> None:
            if not rows:
                return
            lines.append("")
            lines.append(title)
            width = max(len(str(k)) for k in rows)
            for key, value in rows.items():
                if isinstance(value, float):
                    value = f"{value:.6f}"
                lines.append(f"  {str(key):<{width}}  {value}")

        if self.outcome is not None:
            lines.append(f"outcome  {self.outcome}")
        if self.denotation is not None:
            lines.append(f"denotes  {self.denotation}")
        if self.machine_stats:
            section("machine stats", self.machine_stats)
        if self.denote_stats:
            section("denotational stats", self.denote_stats)
        section("events", dict(sorted(self.events.items())))
        if self.set_width_histogram:
            section(
                "set-width histogram (excset-join)",
                {
                    f"width {w}": n
                    for w, n in sorted(self.set_width_histogram.items())
                },
            )
        if self.span_totals:
            hottest = sorted(
                self.span_totals.items(),
                key=lambda kv: (-kv[1]["steps"], kv[0]),
            )
            rows = {
                label: (
                    f"steps={c['steps']} allocs={c['allocs']} "
                    f"forces={c['forces']} raises={c['raises']}"
                )
                for label, c in hottest[:_TABLE_SPAN_LIMIT]
            }
            section("span attribution (hottest first)", rows)
            elided = len(hottest) - _TABLE_SPAN_LIMIT
            if elided > 0:
                lines.append(
                    f"  ... {elided} more spans (use --format json "
                    "for all)"
                )
        section("phases (seconds)", self.phases)
        if self.trace_path is not None:
            lines.append("")
            lines.append(f"trace written to {self.trace_path}")
        if self.flame_path is not None:
            lines.append("")
            lines.append(f"folded stacks written to {self.flame_path}")
        return "\n".join(lines)


def profile_source(
    source: str,
    strategy=None,
    fuel: int = 2_000_000,
    denote_fuel: int = 200_000,
    layer: str = "machine",
    trace: Optional[str] = None,
    deep: bool = False,
    backend: str = "ast",
    attribution: bool = False,
    flame: Optional[str] = None,
) -> ProfileReport:
    """Profile ``source`` (prelude in scope) on the requested layer(s).

    ``backend`` selects the machine evaluator (ast or compiled); both
    emit the same counters and events (docs/PERFORMANCE.md).

    ``attribution=True`` additionally aggregates machine cost per
    source span (a :class:`SpanProfiler` joins the sink tee);
    ``flame=PATH`` implies it and writes the folded-stacks file that
    flamegraph viewers consume."""
    # Imports are local: repro.obs must stay importable from the
    # evaluator modules without a cycle through the high-level API.
    from repro.api import compile_expr
    from repro.core.denote import DenoteContext, denote
    from repro.machine.eval import Machine
    from repro.machine.observe import Normal, observe, show_value
    from repro.obs.timers import PhaseTimer
    from repro.prelude.loader import denote_env, machine_env

    if layer not in LAYERS:
        raise ValueError(f"unknown layer {layer!r} (choose from {LAYERS})")

    counting = CountingSink()
    jsonl: Optional[JsonlSink] = None
    spans: Optional[SpanProfiler] = None
    members: list = [counting]
    if trace is not None:
        jsonl = JsonlSink(trace)
        members.append(jsonl)
    if attribution or flame is not None:
        # Folded stacks destined for a flamegraph carry the strategy
        # decision clock (`@d<N>` frame decorations); the aggregate
        # span table stays undecorated either way.
        spans = SpanProfiler(decisions=flame is not None)
        members.append(spans)
    sink: TraceSink = (
        counting if len(members) == 1 else TeeSink(*members)
    )

    report = ProfileReport(
        source=source, layer=layer, backend=backend, trace_path=trace
    )
    timer = PhaseTimer(sink)
    try:
        with timer.phase("parse"):
            expr = compile_expr(source)

        if layer in ("machine", "both"):
            machine = Machine(strategy=strategy, fuel=fuel, backend=backend)
            with timer.phase("prelude-env"):
                env = machine_env(machine)
            # Attaching the sink *after* env construction (and letting
            # observe() reset the counters) scopes the measurement to
            # the expression itself.
            with timer.phase("machine-eval"):
                outcome = observe(
                    expr, env=env, machine=machine, deep=deep, sink=sink
                )
            report.machine_stats = machine.stats.snapshot().as_dict()
            report.events = dict(counting.counts)
            # Rendering may force further structure, so it happens only
            # after the counters are snapshotted; detach the sink so
            # the extra forcing stays out of the event stream too.
            machine.attach_sink(None)
            if isinstance(outcome, Normal):
                report.outcome = show_value(outcome.value, machine)
            else:
                report.outcome = str(outcome)

        if layer in ("denote", "both"):
            ctx = DenoteContext(fuel=denote_fuel, sink=sink)
            with timer.phase("denote-prelude-env"):
                denv = denote_env(ctx)
            with timer.phase("denote-eval"):
                value = denote(expr, denv, ctx)
            report.denote_stats = {
                "steps": ctx.steps,
                "excset_joins": counting.count(EXCSET_JOIN),
                "case_exception_mode_enters": counting.count(
                    CASE_EXCEPTION_MODE_ENTER
                ),
            }
            report.denotation = str(value)

        report.events = dict(counting.counts)
        report.set_width_histogram = dict(
            counting.width_histograms.get(EXCSET_JOIN, {})
        )
        report.phases = timer.as_dict()
        if spans is not None:
            report.span_totals = {
                label: dict(counters)
                for label, counters in spans.totals.items()
            }
            if flame is not None:
                with open(flame, "w", encoding="utf-8") as fh:
                    for line in spans.folded_lines():
                        fh.write(line + "\n")
                report.flame_path = flame
    finally:
        if jsonl is not None:
            jsonl.close()
    return report
