"""Per-phase wall-clock timers.

A :class:`PhaseTimer` accumulates elapsed seconds per named phase and
(optionally) reports ``phase-start``/``phase-end`` events through a
sink, so a JSONL trace interleaves timing boundaries with the machine
events that occurred inside them.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs.events import PHASE_END, PHASE_START
from repro.obs.sinks import TraceSink, is_live


class PhaseTimer:
    """Accumulating wall-clock timer keyed by phase name.

    Re-entering a phase name accumulates (it does not overwrite), so a
    phase run in a loop reports its total.  Timing uses
    ``time.perf_counter`` — monotonic, unaffected by wall-clock jumps.
    """

    def __init__(self, sink: Optional[TraceSink] = None) -> None:
        self.durations: Dict[str, float] = {}
        self._sink = sink if is_live(sink) else None

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        sink = self._sink
        if sink is not None:
            sink.emit(PHASE_START, phase=name)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[name] = self.durations.get(name, 0.0) + elapsed
            if sink is not None:
                sink.emit(PHASE_END, phase=name, seconds=elapsed)

    def as_dict(self) -> Dict[str, float]:
        return dict(self.durations)
