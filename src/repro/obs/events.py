"""The event taxonomy — the stable names of the tracing contract.

Every event the evaluators can emit is declared here, with the layer
it originates from and the payload fields it carries.  Consumers
(sinks, the profiler, external tooling reading a ``--trace`` JSONL
file) key off these names; they are part of the public contract
documented in docs/OBSERVABILITY.md and must only grow, never change
meaning.

This module must stay dependency-free: it is imported by the hot
evaluator modules (``repro.machine.eval``, ``repro.machine.heap``,
``repro.core.denote``) and by ``repro.obs.sinks``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

# -- machine layer -----------------------------------------------------

#: One machine step (one ``Machine._tick``).  Payload: ``n`` (the step
#: counter after the tick).
STEP = "step"

#: One heap-cell allocation.  Payload: ``kind`` — ``"thunk"`` for a
#: lazily allocated argument/binding cell, ``"con"`` for a constructor
#: skeleton.
ALLOC = "alloc"

#: A thunk entered for evaluation (cache misses only — a memoised
#: re-read emits nothing, exactly as it costs nothing).  Payload:
#: ``depth`` (the nesting depth of in-flight forces, after entry),
#: ``span`` (the source span of the thunk's expression, or None).
FORCE = "force"

#: The matching exit for :data:`FORCE`: the thunk's evaluation finished
#: (value, memoised raise, or unwound exception).  Emitted in a
#: ``finally``, so every ``force`` has exactly one ``force-end``; span
#: attribution uses the pair to maintain its force stack.  Payload:
#: ``depth`` (the nesting depth being exited).
FORCE_END = "force-end"

#: A thunk under evaluation was re-entered (Section 5.2's detectable
#: bottom).  Payload: ``reported`` — True when the machine converts it
#: to ``NonTermination``, False when it diverges genuinely.
BLACKHOLE_ENTER = "blackhole-enter"

#: ``raise`` trimmed the stack (an explicit ``raise`` or a pattern
#: match failure).  Payload: ``exc`` (the exception's name), ``span``
#: (the raise site's source span, or None when unknown).
RAISE = "raise"

#: A cell previously overwritten with ``raise ex`` (Section 3.3) was
#: forced again and re-delivered its memoised exception without
#: re-evaluation ("which is as it should be").  Distinct from
#: :data:`RAISE` — no stack is trimmed by new evaluation and
#: ``stats.raises`` does not move — so the coverage-guided fuzzer can
#: target the memoised re-raise path specifically (docs/FUZZING.md).
#: Payload: ``exc`` (the exception's name).
MEMO_RERAISE = "memo-reraise"

#: A strict primitive's *application* raised (``DivideByZero``,
#: ``Overflow`` from ``⊕`` — Section 3.1's checked arithmetic).  These
#: exceptions have no ``raise`` expression, so they get their own
#: event rather than overloading :data:`RAISE` (whose meaning — an
#: explicit ``raise`` or pattern-match failure, in lockstep with
#: ``stats.raises`` — is part of the contract and must not drift).
#: Exceptions merely *propagating* through a primitive's argument
#: evaluation emit nothing here.  Payload: ``exc`` (the exception's
#: name), ``span`` (the primitive application's source span, or None).
PRIM_RAISE = "prim-raise"

#: An asynchronous event (Section 5.1) fired from the event plan.
#: Payload: ``exc``, ``at`` (the step it was delivered on).
ASYNC_INTERRUPT = "async-interrupt"

#: The Section 5.1 timeout monitor granted fresh fuel.  Payload:
#: ``extra`` (steps granted), ``budget`` (the new absolute budget).
FUEL_GRANT = "fuel-grant"

#: The IO executor performed one action.  Payload: ``tag`` (the action
#: constructor: ``return``, ``bind``, ``getException``, ...).
IO_ACTION = "io-action"

# -- denotational layer ------------------------------------------------

#: Two exception sets were unioned (the Section 4.2/4.3 ``∪``).
#: Payload: ``site`` (``prim`` | ``app`` | ``seq`` | ``case``),
#: ``width`` (finite member count of the result), ``infinite`` (True
#: when the result contains all synchronous exceptions).  Counting
#: sinks build the set-width histogram from ``width``.
EXCSET_JOIN = "excset-join"

#: ``case`` met an exceptional scrutinee and entered exception-finding
#: mode (Section 4.3).  Payload: ``alts`` (alternatives explored).
CASE_EXCEPTION_MODE_ENTER = "case-exception-mode-enter"

# -- timers ------------------------------------------------------------

#: A named wall-clock phase opened / closed.  Payload: ``phase``;
#: ``phase-end`` adds ``seconds``.
PHASE_START = "phase-start"
PHASE_END = "phase-end"


@dataclass(frozen=True)
class EventSpec:
    """One row of the taxonomy: an event name, its source layer, and
    the payload fields it is contracted to carry."""

    name: str
    layer: str  # "machine" | "denote" | "io" | "timer"
    fields: Tuple[str, ...]
    description: str


EVENT_TAXONOMY: Mapping[str, EventSpec] = {
    spec.name: spec
    for spec in (
        EventSpec(STEP, "machine", ("n",), "one evaluator step"),
        EventSpec(ALLOC, "machine", ("kind",), "one heap-cell allocation"),
        EventSpec(
            FORCE,
            "machine",
            ("depth", "span"),
            "thunk entered (cache miss)",
        ),
        EventSpec(
            FORCE_END,
            "machine",
            ("depth",),
            "thunk evaluation finished (value or raise)",
        ),
        EventSpec(
            BLACKHOLE_ENTER,
            "machine",
            ("reported",),
            "thunk re-entered while under evaluation (§5.2)",
        ),
        EventSpec(
            RAISE, "machine", ("exc", "span"), "raise trimmed the stack"
        ),
        EventSpec(
            MEMO_RERAISE,
            "machine",
            ("exc",),
            "a raise-overwritten cell re-delivered its exception (§3.3)",
        ),
        EventSpec(
            PRIM_RAISE,
            "machine",
            ("exc", "span"),
            "a strict primitive's application raised (§3.1 checked ⊕)",
        ),
        EventSpec(
            ASYNC_INTERRUPT,
            "machine",
            ("exc", "at"),
            "asynchronous event delivered (§5.1)",
        ),
        EventSpec(
            FUEL_GRANT,
            "machine",
            ("extra", "budget"),
            "timeout monitor granted fresh fuel (§5.1)",
        ),
        EventSpec(IO_ACTION, "io", ("tag",), "executor performed an action"),
        EventSpec(
            EXCSET_JOIN,
            "denote",
            ("site", "width", "infinite"),
            "exception sets unioned (§4.2/§4.3)",
        ),
        EventSpec(
            CASE_EXCEPTION_MODE_ENTER,
            "denote",
            ("alts",),
            "case entered exception-finding mode (§4.3)",
        ),
        EventSpec(PHASE_START, "timer", ("phase",), "wall-clock phase opened"),
        EventSpec(
            PHASE_END, "timer", ("phase", "seconds"), "wall-clock phase closed"
        ),
    )
}

MACHINE_EVENTS = tuple(
    name for name, spec in EVENT_TAXONOMY.items() if spec.layer == "machine"
)
DENOTE_EVENTS = tuple(
    name for name, spec in EVENT_TAXONOMY.items() if spec.layer == "denote"
)
