"""Observability: structured tracing and metrics for both semantic layers.

The paper's central implementation claim (Section 3.3, reproduced by
E1) is that the exception machinery is *pay-as-you-go*: programs that
never raise pay nothing.  This package extends that discipline to
measurement itself — "tracing is free when off".  A :class:`TraceSink`
is a *decoration* on the evaluators (in the sense of Dumas et al.'s
decorated proofs for computational effects): it observes events but
must never perturb the pure semantics, and with the default null sink
the evaluators execute exactly the seed instruction sequence (asserted
by ``benchmarks/bench_trace_overhead.py``).

Layout
------
``repro.obs.events``
    The event taxonomy: names, layers and payload fields (the
    metrics/tracing *contract*, documented in docs/OBSERVABILITY.md).
``repro.obs.sinks``
    The :class:`TraceSink` protocol and the four stock sinks: null,
    counting, JSONL-streaming and in-memory ring buffer (plus a tee).
``repro.obs.telemetry``
    Aggregation: counters, gauges and log-bucketed histograms with
    deterministic bucket counts and percentiles, collected in a
    :class:`MetricsRegistry` rendered as Prometheus text exposition
    (``GET /metrics``).  :class:`NullRegistry` is the telemetry-off
    twin — the null-sink rule, one level up.
``repro.obs.tracing``
    Request-scoped span trees: :class:`TraceBuilder` against the
    injectable clock, :class:`TraceRecorder` ring + JSONL export,
    deterministic sequence-derived trace ids.
``repro.obs.timers``
    Wall-clock per-phase timers that report through a sink.
``repro.obs.provenance``
    Raise provenance: per-member records of where an exception entered
    the set (raise-site span, force chain, scheduling indices), carried
    alongside — never inside — the semantic values.
``repro.obs.attribution``
    Span-level cost attribution: a sink charging steps/allocs/raises
    to source spans, with folded-stack (flamegraph) output.
``repro.obs.profile``
    The ``repro profile`` engine: run an expression under a counting
    sink on either (or both) semantic layers and render a report.
    Imported lazily by the CLI — not re-exported here, to keep
    ``repro.obs`` importable from the evaluators without cycles.
"""

from repro.obs.attribution import SpanProfiler
from repro.obs.events import (
    ALLOC,
    ASYNC_INTERRUPT,
    BLACKHOLE_ENTER,
    CASE_EXCEPTION_MODE_ENTER,
    DENOTE_EVENTS,
    EVENT_TAXONOMY,
    EXCSET_JOIN,
    FORCE,
    FORCE_END,
    FUEL_GRANT,
    IO_ACTION,
    MACHINE_EVENTS,
    PHASE_END,
    PHASE_START,
    PRIM_RAISE,
    RAISE,
    STEP,
    EventSpec,
)
from repro.obs.provenance import (
    ExcOrigins,
    ProvenanceRecorder,
    RaiseProvenance,
    format_provenance,
)
from repro.obs.sinks import (
    NULL_SINK,
    CountingSink,
    JsonlSink,
    NullSink,
    RingBufferSink,
    TeeSink,
    TraceSink,
    is_live,
    read_trace,
)
from repro.obs.telemetry import (
    LATENCY_BUCKETS,
    STEP_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    log_buckets,
    parse_exposition,
    render_exposition,
)
from repro.obs.timers import PhaseTimer
from repro.obs.tracing import (
    NULL_TRACE_BUILDER,
    NullTraceBuilder,
    Span,
    Trace,
    TraceBuilder,
    TraceRecorder,
    format_trace_id,
)

__all__ = [
    "ALLOC",
    "ASYNC_INTERRUPT",
    "BLACKHOLE_ENTER",
    "CASE_EXCEPTION_MODE_ENTER",
    "Counter",
    "CountingSink",
    "DENOTE_EVENTS",
    "EVENT_TAXONOMY",
    "EXCSET_JOIN",
    "EventSpec",
    "ExcOrigins",
    "FORCE",
    "FORCE_END",
    "FUEL_GRANT",
    "Gauge",
    "Histogram",
    "IO_ACTION",
    "JsonlSink",
    "LATENCY_BUCKETS",
    "MACHINE_EVENTS",
    "MetricsRegistry",
    "NULL_SINK",
    "NULL_TRACE_BUILDER",
    "NullRegistry",
    "NullSink",
    "NullTraceBuilder",
    "PHASE_END",
    "PHASE_START",
    "PRIM_RAISE",
    "PhaseTimer",
    "ProvenanceRecorder",
    "RAISE",
    "RaiseProvenance",
    "RingBufferSink",
    "STEP",
    "STEP_BUCKETS",
    "Span",
    "SpanProfiler",
    "TeeSink",
    "Trace",
    "TraceBuilder",
    "TraceRecorder",
    "TraceSink",
    "format_provenance",
    "format_trace_id",
    "is_live",
    "log_buckets",
    "parse_exposition",
    "read_trace",
    "render_exposition",
]
