"""Raise provenance: *where* each member of an exception set came from.

The paper's semantics deliberately forgets raise sites: an exceptional
value denotes a *set* of exceptions, and which member ``observe``
reports is a scheduling accident (§3, §4.4).  That forgetting is the
right semantics — but a terrible debugging experience.  This module
records, purely as observability metadata, the journey of each raise:

* the **source span** of the raise site (threaded from lexer tokens
  through the parser, flattener and closure lowering);
* the **force chain** — the spans of the thunks being forced when the
  raise fired, i.e. an abbreviated lazy "stack trace";
* the **force depth** and the **decision index** (how many strategy-
  ordered primitive evaluations had happened), which together identify
  the scheduling decision that made this member the observed one.

The record travels *alongside* the semantic value — on the Python
exception object (``ObjRaise.provenance``) and in a ``compare=False``
field of ``Exceptional`` — never inside it.  ``Exc`` and ``ExcSet``
equality, the ordering lattice, and every oracle verdict are untouched
(tests/machine/test_provenance.py locks this in).

Cost contract (docs/OBSERVABILITY.md): recording is off by default and
gated on one precomputed ``machine._prov is None`` check per site —
the same pay-as-you-go discipline as the trace sinks (E1b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: How many innermost force-chain entries a record keeps.  Provenance
#: is a debugging aid, not a full stack dump; the innermost frames are
#: the ones that identify the raise.
CHAIN_LIMIT = 8


@dataclass(frozen=True)
class RaiseProvenance:
    """The recorded journey of one raise.

    ``exc_name`` names the exception (``Exc.name``); ``span`` is the
    raise site's source span (None when the raising expression was
    synthesised without one); ``chain`` holds the spans of the
    enclosing in-flight forces, innermost last, truncated to
    :data:`CHAIN_LIMIT`; ``force_depth`` and ``decision_index`` place
    the raise in the machine's schedule (nesting depth of forces, and
    the prim-op counter at raise time — the strategy's "decision
    clock").
    """

    exc_name: str
    span: Optional[object] = None
    chain: Tuple[object, ...] = ()
    force_depth: int = 0
    decision_index: int = 0

    def describe(self) -> str:
        """One human line: ``DivideByZero raised at 1:2-11``."""
        site = str(self.span) if self.span is not None else "<unknown>"
        return f"{self.exc_name} raised at {site}"

    def describe_chain(self) -> List[str]:
        """The abbreviated force chain, outermost first, one line per
        frame (empty when the raise happened outside any force)."""
        return [f"forced from {span}" for span in self.chain]


class ProvenanceRecorder:
    """Collects :class:`RaiseProvenance` records during one machine run.

    The machine holds at most one recorder (``attach_provenance``); the
    raising sites consult ``machine._prov`` — a single attribute read
    against None — so a machine without a recorder pays nothing beyond
    that check, and the fast paths don't even do that (the E1b
    contract).

    ``stack`` mirrors the spans of in-flight forces (pushed/popped by
    ``Cell.force``); ``records`` accumulates every record built, most
    recent last, for post-run inspection.
    """

    __slots__ = ("stack", "records")

    def __init__(self) -> None:
        self.stack: List[object] = []
        self.records: List[RaiseProvenance] = []

    def make(self, exc, span, stats) -> RaiseProvenance:
        """Build (and retain) a record for ``exc`` raised at ``span``."""
        record = RaiseProvenance(
            exc_name=exc.name,
            span=span,
            chain=tuple(s for s in self.stack[-CHAIN_LIMIT:] if s is not None),
            force_depth=stats.force_depth,
            decision_index=stats.prim_ops,
        )
        self.records.append(record)
        return record

    def annotate(self, err, span, stats):
        """Attach provenance to an in-flight ``ObjRaise``-style error,
        unless one is already attached (the innermost site wins)."""
        if err.provenance is None:
            err.provenance = self.make(err.exc, span, stats)
        return err


class ExcOrigins:
    """Denote-side origin table: which source span *introduced* each
    member of a denoted exception set.

    The denotational evaluator computes the whole set at once, so there
    is no single "raise in flight" to annotate; instead each
    Exc-introduction site (``raise``, checked arithmetic, pattern-match
    failure, ``mapException`` images) notes the member it creates.  The
    first site to introduce a member wins — later *propagation* of the
    same member through unions never rebinds it, matching the
    machine-side innermost-wins rule.

    Attach one to ``DenoteContext.provenance``; origins never influence
    the computed denotation (the table is keyed by the semantic ``Exc``
    values but lives entirely outside them).
    """

    __slots__ = ("origins",)

    def __init__(self) -> None:
        self.origins = {}

    def note(self, exc, span) -> None:
        """Record ``span`` as the introduction site of ``exc`` (first
        introduction wins; spanless sites record nothing)."""
        if span is not None and exc not in self.origins:
            self.origins[exc] = span

    def note_set(self, excs, span) -> None:
        """Note every explicit member of an :class:`ExcSet` (infinite
        tails have no per-member origin to record)."""
        if span is not None:
            for exc in excs.finite_members():
                if exc not in self.origins:
                    self.origins[exc] = span

    def origin_of(self, exc):
        """The recorded introduction span, or None."""
        return self.origins.get(exc)

    def describe(self, exc) -> str:
        """One human line: ``Overflow introduced at 2:3-9``."""
        span = self.origins.get(exc)
        site = str(span) if span is not None else "<unknown>"
        return f"{exc.name} introduced at {site}"


def format_provenance(
    exc, record: Optional[RaiseProvenance], indent: str = "  "
) -> List[str]:
    """Render one observed member with its provenance as text lines.

    Used by ``repro explain``; tolerates a missing record (exceptions
    can enter a set through paths that carry no provenance, e.g. a
    memoised raise from a pre-provenance run).  The head line uses
    ``str(exc)`` so ``UserError``'s message is shown, where the record
    itself only keeps the constructor name.
    """
    if record is None:
        return [f"{exc}: <no provenance recorded>"]
    site = str(record.span) if record.span is not None else "<unknown>"
    lines = [f"{exc} raised at {site}"]
    if record.span is not None:
        # Cross-unit sites (e.g. the prelude's `error`) quote the line
        # they point at, resolved through the unit source registry.
        from repro.lang.units import source_line

        text = source_line(
            getattr(record.span, "unit", None), record.span.line
        )
        if text is not None:
            lines.append(f"{indent}| {text.strip()}")
    chain = record.describe_chain()
    lines.extend(indent + entry for entry in chain)
    lines.append(
        f"{indent}(force depth {record.force_depth}, "
        f"decision index {record.decision_index})"
    )
    return lines
