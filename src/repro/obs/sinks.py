"""Trace sinks: where evaluator events go.

The :class:`TraceSink` protocol has one hot method, ``emit``, taking
the event name positionally and the payload as keyword fields — no
event object is allocated unless a sink chooses to build one, so a
counting sink costs one dict update per event.

The pay-as-you-go contract: the evaluators hold an ``is_live`` sink or
``None``; with no live sink they skip the emission branch entirely, so
the untraced instruction sequence is byte-for-byte the seed's.  The
null sink is deliberately classified as *not live* — attaching it is
exactly equivalent to attaching nothing, which makes "tracing is free
when off" a structural property rather than a measurement.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, IO, Iterable, List, Optional, Union

try:  # Protocol is 3.8+; keep a soft fallback for exotic interpreters.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


@runtime_checkable
class TraceSink(Protocol):
    """Anything that can receive evaluator events.

    ``emit`` must not raise and must not observe or mutate evaluator
    state — sinks are decorations, the semantics may not depend on
    them.  ``close`` flushes/releases resources; it is idempotent.
    """

    def emit(self, name: str, **fields: Any) -> None: ...

    def close(self) -> None: ...


class NullSink:
    """The default sink: discards everything.

    Attaching it is equivalent to attaching no sink at all
    (:func:`is_live` returns False for it), so its overhead is not
    merely small but structurally zero.
    """

    def emit(self, name: str, **fields: Any) -> None:
        pass

    def close(self) -> None:
        pass


NULL_SINK = NullSink()


def is_live(sink: Optional["TraceSink"]) -> bool:
    """True when ``sink`` should actually receive events.

    The evaluators consult this once, at construction/attachment time,
    and compile the answer into a single boolean guard on the hot path.
    A :class:`TeeSink` whose members were all dropped as not-live is
    itself not live — fanning out to nobody is attaching nothing, so
    it must cost nothing (the same structural-zero rule as the null
    sink).
    """
    if sink is None or isinstance(sink, NullSink):
        return False
    if isinstance(sink, TeeSink) and not sink.sinks:
        return False
    return True


class CountingSink:
    """Count events by name; histogram any ``width`` payloads.

    This is the metrics workhorse: the benchmark suite reads machine
    step/allocation counts from here (instead of reaching into
    ``Machine.stats``), and the denotational set-width histogram the
    profiler reports is ``width_histograms["excset-join"]``.
    """

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.width_histograms: Dict[str, Dict[int, int]] = {}

    def emit(self, name: str, **fields: Any) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1
        width = fields.get("width")
        if width is not None:
            hist = self.width_histograms.setdefault(name, {})
            hist[width] = hist.get(width, 0) + 1

    def close(self) -> None:
        pass

    def count(self, name: str) -> int:
        return self.counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(sorted(self.counts.items()))


class RingBufferSink:
    """Keep the most recent ``capacity`` events in memory.

    The flight-recorder sink: cheap enough to leave attached during a
    long run, then inspected after something interesting happened.
    Each record is a plain dict ``{"event": name, **fields}``.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._buffer: "deque[Dict[str, Any]]" = deque(maxlen=capacity)

    def emit(self, name: str, **fields: Any) -> None:
        record: Dict[str, Any] = {"event": name}
        record.update(fields)
        self._buffer.append(record)

    def close(self) -> None:
        pass

    @property
    def events(self) -> List[Dict[str, Any]]:
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlSink:
    """Stream events as JSON Lines, one object per event.

    Records carry a monotonically increasing ``seq`` so a trace can be
    re-ordered/merged downstream; all other keys are the payload
    fields.  Non-JSON payload values are stringified rather than
    rejected — a sink must never raise into the evaluator.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if hasattr(target, "write"):
            self._fh: IO[str] = target  # type: ignore[assignment]
            self._owns = False
        else:
            self._fh = open(target, "w", encoding="utf-8")
            self._owns = True
        self._seq = 0
        self._closed = False

    def emit(self, name: str, **fields: Any) -> None:
        if self._closed:
            return
        self._seq += 1
        record: Dict[str, Any] = {"seq": self._seq, "event": name}
        record.update(fields)
        self._fh.write(json.dumps(record, default=str) + "\n")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns:
            self._fh.close()
        else:
            self._fh.flush()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace back into a list of event records."""
    records: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class TeeSink:
    """Fan one event stream out to several sinks (e.g. counting for
    the report *and* JSONL for ``--trace``)."""

    def __init__(self, *sinks: "TraceSink") -> None:
        self.sinks = tuple(s for s in sinks if is_live(s))

    def emit(self, name: str, **fields: Any) -> None:
        for sink in self.sinks:
            sink.emit(name, **fields)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
