"""Metrics: counters, gauges and log-bucketed histograms.

This is the *aggregation* half of the observability layer.  The PR-1
sinks (:mod:`repro.obs.sinks`) stream or count individual evaluator
events; a :class:`MetricsRegistry` holds **named instruments** whose
values accumulate across requests and render as Prometheus text
exposition for ``GET /metrics`` (docs/OBSERVABILITY.md, "Service
telemetry").

Design rules, in the same spirit as the sink layer:

* **Deterministic aggregation.**  Histogram *bucket counts* are exact
  integers and percentiles are derived from them by a fixed linear
  interpolation — two registries fed the same observations render
  byte-identical exposition and report identical p50/p95/p99,
  regardless of thread interleaving, wall clock or platform.  Time
  enters only through the caller's injectable clock (the same one
  threaded through ``EvalService``), never through module-level
  ``time`` calls.
* **Pay-as-you-go.**  :class:`NullRegistry` mirrors the whole API with
  no-op instruments, so telemetry-off code paths keep the exact
  instruction sequence of a build with no telemetry at all
  (``benchmarks/bench_telemetry.py`` asserts 0% machine-step overhead
  either way — the machine hot path never sees an instrument).
* **Thread-safe.**  Each instrument carries one lock; registries are
  lock-guarded for instrument creation.  No instrument ever raises
  into the serving path.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NullRegistry",
    "STEP_BUCKETS",
    "histogram_stats",
    "log_buckets",
    "parse_exposition",
    "percentile_from_counts",
    "render_exposition",
]


def log_buckets(
    start: float, factor: float, count: int
) -> Tuple[float, ...]:
    """``count`` geometric bucket upper bounds from ``start`` —
    the standard shape for latencies and step counts, whose
    distributions span orders of magnitude."""
    if start <= 0 or factor <= 1 or count <= 0:
        raise ValueError("need start > 0, factor > 1, count > 0")
    return tuple(start * factor**i for i in range(count))


#: 100µs .. ~52s in doublings: wide enough for a cold prelude build,
#: fine enough to separate warm forks from compiles.
LATENCY_BUCKETS = log_buckets(0.0001, 2.0, 20)

#: 1 .. ~4.2M machine steps in powers of four — the fuzz fleet's
#: per-case step histogram (jobs-invariant, docs/FUZZING.md).
STEP_BUCKETS = log_buckets(1.0, 4.0, 12)

_LABEL_KEY = Tuple[Tuple[str, str], ...]


def _label_key(
    labelnames: Tuple[str, ...], labels: Dict[str, Any]
) -> _LABEL_KEY:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} != declared {sorted(labelnames)}"
        )
    return tuple((name, str(labels[name])) for name in labelnames)


def _format_value(value: float) -> str:
    """Prometheus sample values: integers stay integral."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return format(value, ".10g")


def _format_labels(key: _LABEL_KEY, extra: str = "") -> str:
    parts = [f'{name}="{value}"' for name, value in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """A monotonically increasing sum, optionally labelled.

    ``callback`` turns the counter into a *read-through* instrument:
    its value is pulled from an existing total at render time instead
    of being pushed — how the service exposes counters it already
    keeps (cache hits, event totals) without double accounting.
    """

    kind = "counter"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], Any]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.callback = callback
        self._lock = threading.Lock()
        self._values: Dict[_LABEL_KEY, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0)

    def samples(self) -> List[Tuple[str, float]]:
        if self.callback is not None:
            return _callback_samples(self.name, self.callback())
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            # An unlabelled instrument always has one sample — zero
            # until touched, per the usual client-library convention.
            items = [((), 0.0)]
        return [
            (self.name + _format_labels(key), value)
            for key, value in items
        ]


class Gauge(Counter):
    """A value that can go anywhere; ``callback`` reads live state
    (in-flight, breaker state, uptime) at render time."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = value

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: Any) -> None:
        self.inc(-amount, **labels)


def _callback_samples(name: str, result: Any) -> List[Tuple[str, float]]:
    """A callback may return one number or ``{label-value: number}``
    (single implicit label) / ``{(k, v) tuples: number}``."""
    if isinstance(result, dict):
        samples = []
        for key, value in sorted(result.items()):
            if isinstance(key, tuple):
                labels = _format_labels(tuple(key))
            else:
                labels = _format_labels((("key", str(key)),))
            samples.append((name + labels, float(value)))
        return samples
    return [(name, float(result))]


class Histogram:
    """Log-bucketed distribution with exact deterministic counts.

    Observations land in the first bucket whose upper bound is >= the
    value (a final ``+Inf`` bucket catches the rest).  ``percentile``
    interpolates linearly inside the winning bucket — a pure function
    of the integer bucket counts, so two histograms with equal counts
    report equal percentiles to the last bit.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a sorted non-empty sequence")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        # key -> (per-bucket counts incl. +Inf, sum)
        self._series: Dict[_LABEL_KEY, Tuple[List[int], float]] = {}

    def _slot(self, key: _LABEL_KEY) -> Tuple[List[int], float]:
        series = self._series.get(key)
        if series is None:
            series = ([0] * (len(self.buckets) + 1), 0.0)
            self._series[key] = series
        return series

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            counts, total = self._slot(key)
            counts[index] += 1
            self._series[key] = (counts, total + value)

    # -- deterministic views -------------------------------------------

    def bucket_counts(self, **labels: Any) -> List[int]:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            counts, _ = self._series.get(
                key, ([0] * (len(self.buckets) + 1), 0.0)
            )
            return list(counts)

    def count(self, **labels: Any) -> int:
        return sum(self.bucket_counts(**labels))

    def sum(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            _, total = self._series.get(key, ([], 0.0))
            return total

    def merge_counts(self, counts: Sequence[int], **labels: Any) -> None:
        """Fold another histogram's bucket counts in — the fleet's
        shard-merge path (sums are merged separately by the caller)."""
        if len(counts) != len(self.buckets) + 1:
            raise ValueError("bucket count mismatch")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            own, total = self._slot(key)
            for i, c in enumerate(counts):
                own[i] += int(c)
            self._series[key] = (own, total)

    def percentile(self, q: float, **labels: Any) -> float:
        """The q-quantile (0 < q <= 1) by linear interpolation within
        the winning bucket.  Pure in the bucket counts; returns 0.0
        for an empty histogram and the largest finite bound for
        observations that landed in ``+Inf``."""
        counts = self.bucket_counts(**labels)
        total = sum(counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for i, c in enumerate(counts):
            if c == 0:
                continue
            if cumulative + c >= rank:
                if i >= len(self.buckets):  # +Inf bucket
                    return self.buckets[-1]
                lower = self.buckets[i - 1] if i > 0 else 0.0
                upper = self.buckets[i]
                fraction = (rank - cumulative) / c
                return lower + fraction * (upper - lower)
            cumulative += c
        return self.buckets[-1]

    def quantiles(self, **labels: Any) -> Dict[str, float]:
        return {
            "p50": self.percentile(0.50, **labels),
            "p95": self.percentile(0.95, **labels),
            "p99": self.percentile(0.99, **labels),
        }

    # -- exposition -----------------------------------------------------

    def samples(self) -> List[Tuple[str, float]]:
        with self._lock:
            items = sorted(
                (key, list(counts), total)
                for key, (counts, total) in self._series.items()
            )
        if not items and not self.labelnames:
            items = [((), [0] * (len(self.buckets) + 1), 0.0)]
        samples: List[Tuple[str, float]] = []
        for key, counts, total in items:
            cumulative = 0
            for bound, c in zip(
                list(self.buckets) + [math.inf], counts
            ):
                cumulative += c
                le = f'le="{_format_value(bound)}"'
                samples.append(
                    (
                        self.name + "_bucket" + _format_labels(key, le),
                        cumulative,
                    )
                )
            samples.append(
                (self.name + "_sum" + _format_labels(key), total)
            )
            samples.append(
                (self.name + "_count" + _format_labels(key), cumulative)
            )
        return samples


class MetricsRegistry:
    """Named instruments + exposition.  ``get_or_create`` semantics:
    re-registering a name returns the existing instrument (and raises
    on a kind mismatch), so wiring code is idempotent."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}

    def _register(self, kind: type, name: str, *args, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"{name} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            instrument = kind(name, *args, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], Any]] = None,
    ) -> Counter:
        return self._register(Counter, name, help, labelnames, callback)

    def gauge(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], Any]] = None,
    ) -> Gauge:
        return self._register(Gauge, name, help, labelnames, callback)

    def histogram(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        return self._register(Histogram, name, help, buckets, labelnames)

    def get(self, name: str) -> Optional[Any]:
        with self._lock:
            return self._instruments.get(name)

    def families(self) -> List[Any]:
        with self._lock:
            return [
                self._instruments[name]
                for name in sorted(self._instruments)
            ]

    def render(self) -> str:
        return render_exposition(self.families())


class _NullInstrument:
    """Every instrument method, doing nothing — the telemetry-off
    registry hands these out so call sites need no branches."""

    kind = "null"

    def inc(self, amount: float = 1, **labels: Any) -> None:
        pass

    def dec(self, amount: float = 1, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, **labels: Any) -> None:
        pass

    def merge_counts(self, counts, **labels: Any) -> None:
        pass

    def value(self, **labels: Any) -> float:
        return 0.0

    def count(self, **labels: Any) -> int:
        return 0

    def sum(self, **labels: Any) -> float:
        return 0.0

    def bucket_counts(self, **labels: Any) -> List[int]:
        return []

    def percentile(self, q: float, **labels: Any) -> float:
        return 0.0

    def quantiles(self, **labels: Any) -> Dict[str, float]:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def samples(self) -> List[Tuple[str, float]]:
        return []


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The telemetry-off registry: same construction API, no state,
    empty exposition — attaching it is equivalent to attaching
    nothing (the sink layer's ``NullSink`` rule, one level up)."""

    def counter(self, name, help, labelnames=(), callback=None):
        return _NULL_INSTRUMENT

    def gauge(self, name, help, labelnames=(), callback=None):
        return _NULL_INSTRUMENT

    def histogram(self, name, help, buckets=LATENCY_BUCKETS, labelnames=()):
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def families(self) -> List[Any]:
        return []

    def render(self) -> str:
        return ""


def render_exposition(families: Sequence[Any]) -> str:
    """Prometheus text exposition format 0.0.4: ``# HELP`` / ``# TYPE``
    headers, then one ``name{labels} value`` line per sample."""
    lines: List[str] = []
    for family in families:
        samples = family.samples()
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample_name, value in samples:
            lines.append(f"{sample_name} {_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse exposition text back into
    ``{family: {"help", "type", "samples": [(name, labels, value)]}}``
    — the consumer side used by ``repro top`` and the CI scrape."""
    families: Dict[str, Dict[str, Any]] = {}

    def family_for(sample_name: str) -> Dict[str, Any]:
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name[: -len(suffix)]
            if sample_name.endswith(suffix) and trimmed in families:
                base = trimmed
                break
        return families.setdefault(
            base, {"help": "", "type": "untyped", "samples": []}
        )

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(
                name, {"help": "", "type": "untyped", "samples": []}
            )["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(
                name, {"help": "", "type": "untyped", "samples": []}
            )["type"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        labels = {
            k: v.replace('\\"', '"')
            for k, v in _LABEL_RE.findall(match.group("labels") or "")
        }
        raw = match.group("value")
        value = math.inf if raw == "+Inf" else float(raw)
        family_for(match.group("name"))["samples"].append(
            (match.group("name"), labels, value)
        )
    return families


def histogram_stats(
    families: Dict[str, Dict[str, Any]], name: str
) -> Optional[Dict[str, Any]]:
    """Pull count/sum and reconstructed bucket counts for a parsed
    histogram family; None when absent.  The cumulative ``le`` series
    is de-accumulated so percentiles can be re-derived client-side."""
    family = families.get(name)
    if family is None:
        return None
    bounds: List[float] = []
    cumulative: List[float] = []
    count = 0.0
    total = 0.0
    for sample_name, labels, value in family["samples"]:
        if sample_name == name + "_bucket" and "le" in labels:
            bound = (
                math.inf
                if labels["le"] == "+Inf"
                else float(labels["le"])
            )
            bounds.append(bound)
            cumulative.append(value)
        elif sample_name == name + "_count":
            count = value
        elif sample_name == name + "_sum":
            total = value
    counts = [
        int(c - (cumulative[i - 1] if i else 0))
        for i, c in enumerate(cumulative)
    ]
    return {
        "bounds": bounds,
        "counts": counts,
        "count": int(count),
        "sum": total,
    }


def percentile_from_counts(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Re-derive a quantile from de-accumulated bucket counts — the
    same interpolation as :meth:`Histogram.percentile`, for consumers
    of parsed exposition (``repro top``, CI assertions)."""
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    finite = [b for b in bounds if b != math.inf]
    for i, c in enumerate(counts):
        if c == 0:
            continue
        if cumulative + c >= rank:
            if i >= len(finite):
                return finite[-1] if finite else 0.0
            lower = finite[i - 1] if i > 0 else 0.0
            fraction = (rank - cumulative) / c
            return lower + fraction * (finite[i] - lower)
        cumulative += c
    return finite[-1] if finite else 0.0
