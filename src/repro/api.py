"""High-level convenience API.

One-call helpers that wire the pipeline together: parse -> saturate ->
flatten patterns -> (optionally typecheck) -> evaluate, with the
prelude in scope.  Examples and benchmarks use these; the lower-level
modules remain importable for finer control.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.denote import (
    DenoteContext,
    denote,
    ensure_recursion_headroom,
)
from repro.core.domains import SemVal, Thunk
from repro.core.laws import LawReport, check_law
from repro.io.events import EventPlan
from repro.io.run import IOExecutor, IOResult
from repro.lang.ast import Expr, Program
from repro.lang.match import flatten_case_patterns, flatten_program, sibling_map
from repro.lang.parser import parse_expr, parse_program
from repro.machine.eval import Machine, program_env as machine_program_env
from repro.machine.heap import Cell
from repro.machine.observe import Outcome, observe
from repro.machine.strategy import Strategy
from repro.machine.values import VIO
from repro.prelude.loader import (
    con_arities,
    denote_env,
    machine_env,
    prelude_program,
)
from repro.types.adt import ADTEnv
from repro.types.infer import TypeEnv, infer_program


def compile_expr(source: str) -> Expr:
    """Parse and flatten one expression (prelude constructors in scope)."""
    program = prelude_program()
    expr = parse_expr(source, con_arities=con_arities())
    arities = dict(con_arities())
    return flatten_case_patterns(expr, sibling_map(program), arities)


def compile_program(source: str, typecheck: bool = False) -> Program:
    """Parse and flatten a module on top of the prelude."""
    program = parse_program(source, con_arities=con_arities())
    flattened = flatten_program(program)
    if typecheck:
        typecheck_program(flattened)
    return flattened


def prelude_type_env() -> Tuple[TypeEnv, ADTEnv]:
    prelude = prelude_program()
    adts = ADTEnv.from_programs(prelude)
    env = infer_program(prelude, adts=adts)
    return env, adts


def typecheck_program(program: Program) -> TypeEnv:
    """Typecheck a module against the prelude environment."""
    base, adts = prelude_type_env()
    for decl in program.data_decls:
        adts.add_decl(decl)
    return infer_program(program, base_env=base, adts=adts)


def denote_source(
    source: str,
    fuel: int = 200_000,
    ctx: Optional[DenoteContext] = None,
) -> SemVal:
    """The denotation (Section 4) of an expression, prelude in scope."""
    ensure_recursion_headroom()
    expr = compile_expr(source)
    if ctx is None:
        ctx = DenoteContext(fuel=fuel)
    env = denote_env(ctx)
    return denote(expr, env, ctx)


def _machine_kwargs(backend: str, profile) -> Dict[str, object]:
    """The extra Machine() kwargs a profile implies.  Only the
    superinstruction backend consumes one (docs/PERFORMANCE.md)."""
    if profile is None:
        return {}
    if backend != "super":
        raise ValueError(
            f"profile-guided fusion requires backend='super', "
            f"got {backend!r}"
        )
    return {"profile": profile}


def observe_source(
    source: str,
    strategy: Optional[Strategy] = None,
    fuel: int = 2_000_000,
    deep: bool = False,
    backend: str = "ast",
    profile=None,
) -> Outcome:
    """Run an expression on the operational machine, prelude in scope.

    ``backend="compiled"`` selects the compile-to-closures evaluator
    and ``backend="super"`` the profile-guided superinstruction
    backend (docs/PERFORMANCE.md); observations are identical, only
    speed differs.  ``profile`` (super only) narrows fusion to
    profile-hot spans — a heat map, a ``.folded`` path, or folded
    lines."""
    expr = compile_expr(source)
    machine = Machine(
        strategy=strategy,
        fuel=fuel,
        backend=backend,
        **_machine_kwargs(backend, profile),
    )
    env = machine_env(machine)
    return observe(expr, env=env, machine=machine, deep=deep)


def run_io_source(
    source: str,
    stdin: str = "",
    strategy: Optional[Strategy] = None,
    fuel: int = 2_000_000,
    timeout_as_exception: bool = False,
    events: Optional[EventPlan] = None,
    backend: str = "ast",
    profile=None,
) -> IOResult:
    """Perform an ``IO`` expression, prelude in scope."""
    expr = compile_expr(source)
    machine = Machine(
        strategy=strategy,
        fuel=fuel,
        event_plan=events.as_dict() if events else None,
        backend=backend,
        **_machine_kwargs(backend, profile),
    )
    env = machine_env(machine)
    executor = IOExecutor(
        machine=machine,
        stdin=stdin,
        timeout_as_exception=timeout_as_exception,
    )
    return executor.run_cell(Cell(expr, env))


def run_io_program(
    source: str,
    entry: str = "main",
    stdin: str = "",
    strategy: Optional[Strategy] = None,
    fuel: int = 2_000_000,
    timeout_as_exception: bool = False,
    events: Optional[EventPlan] = None,
    typecheck: bool = False,
    backend: str = "ast",
    profile=None,
) -> IOResult:
    """Compile a module and perform its ``main`` (or another entry)."""
    program = compile_program(source, typecheck=typecheck)
    machine = Machine(
        strategy=strategy,
        fuel=fuel,
        event_plan=events.as_dict() if events else None,
        backend=backend,
        **_machine_kwargs(backend, profile),
    )
    env = machine_program_env(program, machine, machine_env(machine))
    executor = IOExecutor(
        machine=machine,
        stdin=stdin,
        timeout_as_exception=timeout_as_exception,
    )
    cell = env.get(entry)
    if cell is None:
        raise KeyError(f"no top-level binding {entry!r}")
    return executor.run_cell(cell)


def check_law_sources(
    lhs: str, rhs: str, name: str = "law", **kwargs
) -> LawReport:
    """Check a law given as two source strings, with the prelude in
    scope (both constructor arities and prelude *functions* — so
    ``error "This"`` means the real prelude ``error``, not a schema
    variable)."""
    if "base_env" not in kwargs:
        prelude_ctx = DenoteContext(fuel=2_000_000)
        kwargs["base_env"] = denote_env(prelude_ctx)
    return check_law(
        compile_expr(lhs), compile_expr(rhs), name=name, **kwargs
    )
