"""Algorithm W with let-polymorphism.

The exception-specific typing rules follow the paper:

* ``raise e`` has type ``a`` for any ``a``, with ``e :: Exception``
  (Section 3.1: "for each type a, raise maps an Exception into an
  exceptional value of type a");
* ``getException e`` has type ``IO (ExVal a)`` when ``e :: a``
  (Section 3.5 — the IO monad confines the non-determinism);
* ``mapException`` has type
  ``(Exception -> Exception) -> a -> a`` (Section 5.4 — pure!).

Comparison primitives are typed ``a -> a -> Bool``; without type
classes this is more permissive than the evaluators (which compare base
values only) — the standard compromise for a class-less HM language,
noted in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lang.ast import (
    App,
    Case,
    Con,
    Expr,
    Fix,
    Lam,
    Let,
    Lit,
    Pattern,
    PCon,
    PLit,
    PrimOp,
    Program,
    PVar,
    PWild,
    Raise,
    Var,
)
from repro.types.adt import ADTEnv
from repro.types.types import (
    BOOL,
    CHAR,
    EXCEPTION,
    INT,
    STRING,
    Scheme,
    TCon,
    TFun,
    TVar,
    TVarSupply,
    Type,
    UNIT,
    exval_of,
    free_type_vars,
    fun,
    io_of,
)
from repro.types.unify import Subst, UnifyError, apply_subst, unify

TypeEnv = Dict[str, Scheme]


class TypeError_(Exception):
    """A type error in an object-language program."""


def _a(name: str = "a") -> TVar:
    return TVar(name)


# Primitive signatures.  Polymorphic entries are Schemes.
PRIM_SCHEMES: Dict[str, Scheme] = {
    "+": Scheme.mono(fun(INT, INT, INT)),
    "-": Scheme.mono(fun(INT, INT, INT)),
    "*": Scheme.mono(fun(INT, INT, INT)),
    "div": Scheme.mono(fun(INT, INT, INT)),
    "mod": Scheme.mono(fun(INT, INT, INT)),
    "negate": Scheme.mono(fun(INT, INT)),
    "uadd": Scheme.mono(fun(INT, INT, INT)),
    "usub": Scheme.mono(fun(INT, INT, INT)),
    "umul": Scheme.mono(fun(INT, INT, INT)),
    "udiv": Scheme.mono(fun(INT, INT, INT)),
    "umod": Scheme.mono(fun(INT, INT, INT)),
    "unegate": Scheme.mono(fun(INT, INT)),
    "==": Scheme(("a",), fun(_a(), _a(), BOOL)),
    "/=": Scheme(("a",), fun(_a(), _a(), BOOL)),
    "<": Scheme(("a",), fun(_a(), _a(), BOOL)),
    "<=": Scheme(("a",), fun(_a(), _a(), BOOL)),
    ">": Scheme(("a",), fun(_a(), _a(), BOOL)),
    ">=": Scheme(("a",), fun(_a(), _a(), BOOL)),
    "strAppend": Scheme.mono(fun(STRING, STRING, STRING)),
    "strLen": Scheme.mono(fun(STRING, INT)),
    "showInt": Scheme.mono(fun(INT, STRING)),
    "ord": Scheme.mono(fun(CHAR, INT)),
    "chr": Scheme.mono(fun(INT, CHAR)),
    "seq": Scheme(("a", "b"), fun(_a(), _a("b"), _a("b"))),
    "mapException": Scheme(
        ("a",), fun(TFun(EXCEPTION, EXCEPTION), _a(), _a())
    ),
    "returnIO": Scheme(("a",), fun(_a(), io_of(_a()))),
    "bindIO": Scheme(
        ("a", "b"),
        fun(io_of(_a()), TFun(_a(), io_of(_a("b"))), io_of(_a("b"))),
    ),
    "getChar": Scheme.mono(io_of(CHAR)),
    "putChar": Scheme.mono(fun(CHAR, io_of(UNIT))),
    "putStr": Scheme.mono(fun(STRING, io_of(UNIT))),
    "getException": Scheme(("a",), fun(_a(), io_of(exval_of(_a())))),
    "ioError": Scheme(("a",), fun(EXCEPTION, io_of(_a()))),
    "catchIO": Scheme(
        ("a",),
        fun(io_of(_a()), TFun(EXCEPTION, io_of(_a())), io_of(_a())),
    ),
    "forkIO": Scheme.mono(fun(io_of(UNIT), io_of(UNIT))),
    "newMVar": Scheme(("a",), fun(_a(), io_of(TCon("MVar", (_a(),))))),
    "newEmptyMVar": Scheme(("a",), io_of(TCon("MVar", (_a(),)))),
    "takeMVar": Scheme(("a",), fun(TCon("MVar", (_a(),)), io_of(_a()))),
    "putMVar": Scheme(
        ("a",), fun(TCon("MVar", (_a(),)), _a(), io_of(UNIT))
    ),
    "yieldIO": Scheme.mono(io_of(UNIT)),
}


class Inferencer:
    def __init__(self, adts: ADTEnv) -> None:
        self.adts = adts
        self.supply = TVarSupply()
        self.subst: Subst = {}

    # -- helpers -----------------------------------------------------------

    def fresh(self) -> TVar:
        return self.supply.fresh()

    def instantiate(self, scheme: Scheme) -> Type:
        if not scheme.vars:
            return scheme.type
        mapping: Subst = {v: self.fresh() for v in scheme.vars}
        return apply_subst(mapping, scheme.type)

    def _unify(self, t1: Type, t2: Type, where: str) -> None:
        try:
            unify(t1, t2, self.subst)
        except UnifyError as err:
            raise TypeError_(f"{where}: {err}") from None

    def generalize(self, env: TypeEnv, t: Type) -> Scheme:
        t = apply_subst(self.subst, t)
        env_vars: set = set()
        for scheme in env.values():
            for name in scheme.free_vars():
                env_vars |= free_type_vars(
                    apply_subst(self.subst, TVar(name))
                )
        gen = tuple(sorted(free_type_vars(t) - env_vars))
        return Scheme(gen, t)

    # -- inference ---------------------------------------------------------

    def infer(self, expr: Expr, env: TypeEnv) -> Type:
        if isinstance(expr, Var):
            scheme = env.get(expr.name)
            if scheme is None:
                raise TypeError_(f"unbound variable {expr.name!r}")
            return self.instantiate(scheme)
        if isinstance(expr, Lit):
            return {"int": INT, "char": CHAR, "string": STRING}[expr.kind]
        if isinstance(expr, Lam):
            arg = self.fresh()
            inner = dict(env)
            inner[expr.var] = Scheme.mono(arg)
            result = self.infer(expr.body, inner)
            return TFun(arg, result)
        if isinstance(expr, App):
            fn_t = self.infer(expr.fn, env)
            arg_t = self.infer(expr.arg, env)
            result = self.fresh()
            self._unify(fn_t, TFun(arg_t, result), "application")
            return result
        if isinstance(expr, Con):
            info = self.adts.constructor(expr.name)
            con_t = self.instantiate(info.scheme())
            # Saturated: peel one arrow per argument.
            result: Type = con_t
            for arg in expr.args:
                arg_t = self.infer(arg, env)
                out = self.fresh()
                self._unify(result, TFun(arg_t, out), f"constructor {expr.name}")
                result = out
            return result
        if isinstance(expr, Case):
            scrut_t = self.infer(expr.scrutinee, env)
            result = self.fresh()
            for alt in expr.alts:
                bindings: TypeEnv = {}
                pat_t = self.infer_pattern(alt.pattern, bindings)
                self._unify(scrut_t, pat_t, "case scrutinee")
                inner = dict(env)
                inner.update(bindings)
                body_t = self.infer(alt.body, inner)
                self._unify(result, body_t, "case alternative")
            return result
        if isinstance(expr, Raise):
            exc_t = self.infer(expr.exc, env)
            self._unify(exc_t, EXCEPTION, "raise")
            return self.fresh()
        if isinstance(expr, PrimOp):
            scheme = PRIM_SCHEMES.get(expr.op)
            if scheme is None:
                raise TypeError_(f"unknown primitive {expr.op!r}")
            prim_t = self.instantiate(scheme)
            result = prim_t
            for arg in expr.args:
                arg_t = self.infer(arg, env)
                out = self.fresh()
                self._unify(result, TFun(arg_t, out), f"primitive {expr.op}")
                result = out
            return result
        if isinstance(expr, Fix):
            fn_t = self.infer(expr.fn, env)
            a = self.fresh()
            self._unify(fn_t, TFun(a, a), "fix")
            return a
        if isinstance(expr, Let):
            return self.infer_let(expr.binds, expr.body, env)
        raise TypeError_(f"infer: unknown expression {expr!r}")

    def infer_let(
        self,
        binds: Tuple[Tuple[str, Expr], ...],
        body: Optional[Expr],
        env: TypeEnv,
    ) -> Type:
        """Infer a mutually recursive binding group, generalizing after
        the whole group is solved; then infer the body (if any)."""
        mono: Dict[str, TVar] = {name: self.fresh() for name, _ in binds}
        inner = dict(env)
        for name, tv in mono.items():
            inner[name] = Scheme.mono(tv)
        for name, rhs in binds:
            rhs_t = self.infer(rhs, inner)
            self._unify(mono[name], rhs_t, f"binding {name!r}")
        gen_env = dict(env)
        for name, tv in mono.items():
            gen_env[name] = self.generalize(env, tv)
        if body is None:
            env.update(gen_env)
            return UNIT
        return self.infer(body, gen_env)

    def infer_pattern(self, pattern: Pattern, bindings: TypeEnv) -> Type:
        if isinstance(pattern, PWild):
            return self.fresh()
        if isinstance(pattern, PVar):
            t = self.fresh()
            bindings[pattern.name] = Scheme.mono(t)
            return t
        if isinstance(pattern, PLit):
            return {"int": INT, "char": CHAR, "string": STRING}[pattern.kind]
        if isinstance(pattern, PCon):
            info = self.adts.constructor(pattern.name)
            con_t = self.instantiate(info.scheme())
            field_ts: List[Type] = []
            t: Type = con_t
            for _ in range(info.arity):
                t = apply_subst(self.subst, t)
                assert isinstance(t, TFun)
                field_ts.append(t.arg)
                t = t.result
            if len(pattern.args) != info.arity:
                raise TypeError_(
                    f"constructor pattern {pattern.name} has "
                    f"{len(pattern.args)} args, expected {info.arity}"
                )
            for sub, field_t in zip(pattern.args, field_ts):
                sub_t = self.infer_pattern(sub, bindings)
                self._unify(sub_t, field_t, f"pattern {pattern.name}")
            return t
        raise TypeError_(f"unknown pattern {pattern!r}")


def infer_expr(
    expr: Expr,
    env: Optional[TypeEnv] = None,
    adts: Optional[ADTEnv] = None,
) -> Type:
    """Infer the (solved) type of an expression."""
    inf = Inferencer(adts or ADTEnv())
    t = inf.infer(expr, dict(env) if env else {})
    return apply_subst(inf.subst, t)


def infer_program(
    program: Program,
    base_env: Optional[TypeEnv] = None,
    adts: Optional[ADTEnv] = None,
    check_signatures: bool = True,
) -> TypeEnv:
    """Infer types for every top-level binding of a program.

    Bindings are split into strongly connected components of the call
    graph and inferred dependency-first, generalizing after each
    component (standard HM binding-group analysis — without it every
    use site would pin every callee monomorphically).  Bindings with
    declared signatures are available at their declared (polymorphic)
    type everywhere, including inside their own component.

    When ``check_signatures`` is set, each declared signature is
    checked for *compatibility* with the inferred type (unification
    after instantiation; full generality checking would need
    skolemisation, which this class-less language does not warrant —
    see DESIGN.md).
    """
    from repro.types.depgraph import dependency_sccs

    if adts is None:
        adts = ADTEnv.from_programs(program)
    inf = Inferencer(adts)
    env: TypeEnv = dict(base_env) if base_env else {}

    sig_schemes: Dict[str, Scheme] = {}
    for name, syn in program.type_sigs:
        declared = adts.elaborate(syn)
        sig_schemes[name] = Scheme(
            tuple(sorted(free_type_vars(declared))), declared
        )
    bound_names = {name for name, _ in program.binds}
    for name in sig_schemes:
        if name not in bound_names:
            raise TypeError_(f"signature for unbound {name!r}")
    # Declared bindings are visible polymorphically everywhere.
    env.update(
        {n: s for n, s in sig_schemes.items() if n in bound_names}
    )

    for component in dependency_sccs(program.binds):
        mono: Dict[str, TVar] = {}
        inner = dict(env)
        for name, _rhs in component:
            if name not in sig_schemes:
                mono[name] = inf.fresh()
                inner[name] = Scheme.mono(mono[name])
        inferred: Dict[str, Type] = {}
        for name, rhs in component:
            rhs_t = inf.infer(rhs, inner)
            inferred[name] = rhs_t
            if name in mono:
                inf._unify(mono[name], rhs_t, f"binding {name!r}")
            elif check_signatures:
                inst_declared = inf.instantiate(sig_schemes[name])
                try:
                    unify(inst_declared, rhs_t, inf.subst)
                except UnifyError as err:
                    raise TypeError_(
                        f"signature mismatch for {name!r}: declared "
                        f"{sig_schemes[name].type}, inferred "
                        f"{apply_subst(inf.subst, rhs_t)} ({err})"
                    ) from None
        for name, tv in mono.items():
            env[name] = inf.generalize(env, tv)

    return {
        name: Scheme(s.vars, apply_subst(inf.subst, s.type))
        for name, s in env.items()
    }
