"""Dependency analysis of top-level binding groups.

Hindley–Milner only generalizes at ``let`` boundaries, so inferring a
whole module as one mutually recursive group would make every binding
monomorphic in every other — ``zip``'s use of ``zipWith`` would pin
``zipWith``'s type.  The standard fix (Haskell report, section 4.5.1)
is to split the bindings into strongly connected components of the
call graph and infer them in dependency order, generalizing after each
component.

Tarjan's algorithm, iterative to avoid Python recursion limits on
large modules.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.lang.ast import Expr
from repro.lang.names import free_vars

Bind = Tuple[str, Expr]


def dependency_sccs(binds: Sequence[Bind]) -> List[List[Bind]]:
    """Partition bindings into SCCs in reverse-topological order
    (dependencies first)."""
    names = [name for name, _ in binds]
    name_set = set(names)
    rhs_map = dict(binds)
    graph: Dict[str, List[str]] = {
        name: sorted(free_vars(rhs) & name_set)
        for name, rhs in binds
    }

    index_counter = [0]
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []

    for root in names:
        if root in index:
            continue
        # Iterative Tarjan: work items are (node, iterator position).
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, pos = work[-1]
            if pos == 0:
                index[node] = lowlink[node] = index_counter[0]
                index_counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            successors = graph[node]
            while pos < len(successors):
                succ = successors[pos]
                pos += 1
                if succ not in index:
                    work[-1] = (node, pos)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)

    # Tarjan emits SCCs in reverse topological order of the condensed
    # graph when edges point from user to used — which is exactly
    # "dependencies first" for our free-variable edges.
    order = {name: i for i, (name, _) in enumerate(binds)}
    return [
        [(name, rhs_map[name]) for name in sorted(component, key=order.get)]
        for component in sccs
    ]
