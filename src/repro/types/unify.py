"""Substitutions and unification (Robinson, with occurs check)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.types.types import Scheme, TCon, TFun, TVar, Type

Subst = Dict[str, Type]


class UnifyError(Exception):
    def __init__(self, t1: Type, t2: Type, reason: str = "") -> None:
        message = f"cannot unify {t1} with {t2}"
        if reason:
            message += f" ({reason})"
        super().__init__(message)
        self.t1 = t1
        self.t2 = t2


def apply_subst(subst: Subst, t: Type) -> Type:
    if isinstance(t, TVar):
        replacement = subst.get(t.name)
        if replacement is None:
            return t
        # Path-compress chains v -> v' -> type.
        result = apply_subst(subst, replacement)
        if result is not replacement:
            subst[t.name] = result
        return result
    if isinstance(t, TCon):
        if not t.args:
            return t
        return TCon(t.name, tuple(apply_subst(subst, a) for a in t.args))
    if isinstance(t, TFun):
        return TFun(
            apply_subst(subst, t.arg), apply_subst(subst, t.result)
        )
    raise TypeError(f"apply_subst: {t!r}")


def apply_subst_scheme(subst: Subst, scheme: Scheme) -> Scheme:
    trimmed = {
        name: t for name, t in subst.items() if name not in scheme.vars
    }
    return Scheme(scheme.vars, apply_subst(trimmed, scheme.type))


def _occurs(name: str, t: Type, subst: Subst) -> bool:
    t = apply_subst(subst, t)
    if isinstance(t, TVar):
        return t.name == name
    if isinstance(t, TCon):
        return any(_occurs(name, a, subst) for a in t.args)
    if isinstance(t, TFun):
        return _occurs(name, t.arg, subst) or _occurs(name, t.result, subst)
    return False


def unify(t1: Type, t2: Type, subst: Subst) -> None:
    """Destructively extend ``subst`` so that ``t1`` equals ``t2``."""
    t1 = apply_subst(subst, t1)
    t2 = apply_subst(subst, t2)
    if isinstance(t1, TVar):
        if isinstance(t2, TVar) and t1.name == t2.name:
            return
        if _occurs(t1.name, t2, subst):
            raise UnifyError(t1, t2, "occurs check")
        subst[t1.name] = t2
        return
    if isinstance(t2, TVar):
        unify(t2, t1, subst)
        return
    if isinstance(t1, TCon) and isinstance(t2, TCon):
        if t1.name != t2.name or len(t1.args) != len(t2.args):
            raise UnifyError(t1, t2)
        for a, b in zip(t1.args, t2.args):
            unify(a, b, subst)
        return
    if isinstance(t1, TFun) and isinstance(t2, TFun):
        unify(t1.arg, t2.arg, subst)
        unify(t1.result, t2.result, subst)
        return
    raise UnifyError(t1, t2)
