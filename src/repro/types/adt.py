"""Algebraic data type environments.

Elaborates parsed ``data`` declarations (syntactic types) into semantic
:class:`repro.types.types.Type` values, and records, for every
constructor, its owning type, type parameters and field types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.lang.ast import DataDecl, Program
from repro.lang.syntax_types import STCon, STFun, STVar, SynType
from repro.types.types import Scheme, TCon, TFun, TVar, Type, fun


class ADTError(Exception):
    pass


@dataclass(frozen=True)
class ConstructorInfo:
    """Everything inference needs about one constructor."""

    name: str
    type_name: str
    params: Tuple[str, ...]
    fields: Tuple[Type, ...]

    @property
    def arity(self) -> int:
        return len(self.fields)

    def result_type(self) -> Type:
        return TCon(self.type_name, tuple(TVar(p) for p in self.params))

    def scheme(self) -> Scheme:
        """The constructor as a function: ``forall ps. f1 -> ... -> T ps``."""
        return Scheme(self.params, fun(*self.fields, self.result_type()))


# Base types known without declaration.  Bool, List, Maybe, Tuple*,
# Exception, ExVal etc. come from the prelude's data declarations.
PRIMITIVE_TYPES: Dict[str, int] = {
    "Int": 0,
    "Char": 0,
    "String": 0,
    "IO": 1,
    "MVar": 1,
}


class ADTEnv:
    """Constructor and type-constructor environment."""

    def __init__(self) -> None:
        self.constructors: Dict[str, ConstructorInfo] = {}
        self.type_arity: Dict[str, int] = dict(PRIMITIVE_TYPES)

    @staticmethod
    def from_programs(*programs: Program) -> "ADTEnv":
        env = ADTEnv()
        for program in programs:
            for decl in program.data_decls:
                env.add_decl(decl)
        return env

    def add_decl(self, decl: DataDecl) -> None:
        if decl.name in self.type_arity:
            # Redeclaration with the same shape is tolerated (so the
            # prelude and a test fixture can both declare e.g. Bool);
            # differing shapes are an error.
            if self.type_arity[decl.name] != len(decl.params):
                raise ADTError(
                    f"type {decl.name!r} redeclared with different arity"
                )
        self.type_arity[decl.name] = len(decl.params)
        for cname, cargs in decl.constructors:
            fields = tuple(
                self.elaborate(arg, decl.params) for arg in cargs
            )
            info = ConstructorInfo(cname, decl.name, decl.params, fields)
            if cname in self.constructors:
                old = self.constructors[cname]
                if (old.type_name, old.params, old.fields) != (
                    info.type_name,
                    info.params,
                    info.fields,
                ):
                    raise ADTError(f"constructor {cname!r} redeclared")
            self.constructors[cname] = info

    def constructor(self, name: str) -> ConstructorInfo:
        info = self.constructors.get(name)
        if info is None:
            raise ADTError(f"unknown constructor {name!r}")
        return info

    def elaborate(
        self, syn: object, scope: Iterable[str] = ()
    ) -> Type:
        """Syntactic type -> semantic type.  ``scope`` lists the type
        variables in scope (a data declaration's parameters); other
        lower-case names also elaborate to TVars (for standalone
        signatures)."""
        if isinstance(syn, STVar):
            return TVar(syn.name)
        if isinstance(syn, STFun):
            return TFun(
                self.elaborate(syn.arg, scope),
                self.elaborate(syn.result, scope),
            )
        if isinstance(syn, STCon):
            args = tuple(self.elaborate(a, scope) for a in syn.args)
            return TCon(syn.name, args)
        raise ADTError(f"cannot elaborate type {syn!r}")
