"""Hindley–Milner type inference for the object language.

The paper's design is deliberately type-system-light: the only typing
novelties are ``raise :: Exception -> a`` (every type contains
exceptional values, Section 3.1) and ``getException :: a -> IO (ExVal
a)`` (handling is confined to the IO monad, Section 3.5).  This package
provides standard Algorithm-W inference with algebraic data types so
that programs can be checked before they reach the evaluators.
"""

from repro.types.adt import ADTEnv, ConstructorInfo
from repro.types.infer import TypeError_, infer_expr, infer_program
from repro.types.types import Scheme, TCon, TFun, TVar, Type
from repro.types.unify import UnifyError, unify

__all__ = [
    "ADTEnv",
    "ConstructorInfo",
    "Scheme",
    "TCon",
    "TFun",
    "TVar",
    "Type",
    "TypeError_",
    "UnifyError",
    "infer_expr",
    "infer_program",
    "unify",
]
