"""Type representations: monotypes and type schemes."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple


class Type:
    __slots__ = ()


@dataclass(frozen=True)
class TVar(Type):
    """A type variable (unification or quantified)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TCon(Type):
    """A type constructor application: ``Int``, ``List a``, ``IO a``."""

    name: str
    args: Tuple[Type, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.name
        if self.name == "List" and len(self.args) == 1:
            return f"[{self.args[0]}]"
        if self.name.startswith("Tuple"):
            return "(" + ", ".join(str(a) for a in self.args) + ")"
        inner = " ".join(
            f"({a})" if isinstance(a, (TCon, TFun)) and _needs_parens(a) else str(a)
            for a in self.args
        )
        return f"{self.name} {inner}"


@dataclass(frozen=True)
class TFun(Type):
    """The function type ``arg -> result``."""

    arg: Type
    result: Type

    def __str__(self) -> str:
        arg = (
            f"({self.arg})" if isinstance(self.arg, TFun) else str(self.arg)
        )
        return f"{arg} -> {self.result}"


def _needs_parens(t: Type) -> bool:
    if isinstance(t, TFun):
        return True
    return isinstance(t, TCon) and bool(t.args) and t.name != "List"


INT = TCon("Int")
CHAR = TCon("Char")
STRING = TCon("String")
BOOL = TCon("Bool")
UNIT = TCon("Unit")
EXCEPTION = TCon("Exception")


def list_of(t: Type) -> TCon:
    return TCon("List", (t,))


def io_of(t: Type) -> TCon:
    return TCon("IO", (t,))


def exval_of(t: Type) -> TCon:
    return TCon("ExVal", (t,))


def fun(*types: Type) -> Type:
    """``fun(a, b, c)`` builds ``a -> b -> c``."""
    result = types[-1]
    for t in reversed(types[:-1]):
        result = TFun(t, result)
    return result


def free_type_vars(t: Type) -> FrozenSet[str]:
    if isinstance(t, TVar):
        return frozenset((t.name,))
    if isinstance(t, TCon):
        out: FrozenSet[str] = frozenset()
        for arg in t.args:
            out |= free_type_vars(arg)
        return out
    if isinstance(t, TFun):
        return free_type_vars(t.arg) | free_type_vars(t.result)
    raise TypeError(f"free_type_vars: {t!r}")


@dataclass(frozen=True)
class Scheme:
    """A polymorphic type: ``forall vars. type``."""

    vars: Tuple[str, ...]
    type: Type

    @staticmethod
    def mono(t: Type) -> "Scheme":
        return Scheme((), t)

    def free_vars(self) -> FrozenSet[str]:
        return free_type_vars(self.type) - frozenset(self.vars)

    def __str__(self) -> str:
        if not self.vars:
            return str(self.type)
        return f"forall {' '.join(self.vars)}. {self.type}"


class TVarSupply:
    """Fresh type-variable names: t0, t1, ..."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def fresh(self, hint: str = "t") -> TVar:
        return TVar(f"{hint}{next(self._counter)}")
