"""The alternative designs the paper considers and rejects
(Section 3.4), built so the comparison is executable:

* :mod:`repro.baselines.fixed_order` — "fix the evaluation order, as
  part of the language semantics" (ML, FL, some Haskell proposals):
  simple semantics, but reordering transformations become unsound.
* :mod:`repro.baselines.nondet` — "go non-deterministic": the compiler
  may choose any order, but the non-determinism leaks into the source
  language and beta reduction dies.
"""

from repro.baselines.fixed_order import (
    fixed_order_ctx,
    denote_fixed_order,
    naive_case_ctx,
)
from repro.baselines.nondet import (
    collect_outcomes,
    demonstrate_beta_failure,
    ChoiceStrategy,
)

__all__ = [
    "ChoiceStrategy",
    "collect_outcomes",
    "demonstrate_beta_failure",
    "denote_fixed_order",
    "fixed_order_ctx",
    "naive_case_ctx",
]
