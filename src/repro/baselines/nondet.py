"""The "go non-deterministic" baseline (Section 3.4, second option).

"Declare that + makes a non-deterministic choice of which argument to
evaluate first.  Then the compiler is free to make that choice however
it likes.  Alas, this approach exposes non-determinism in the source
language, which also invalidates useful laws.  In particular, β
reduction is not valid any more."

Two tools:

* :func:`collect_outcomes` — a collecting semantics: run the machine
  over *every* resolution of the evaluation-order choices (bounded
  backtracking over choice points) and return the set of observable
  outcomes.  Under this baseline the meaning of a program IS this set.
* :func:`demonstrate_beta_failure` — the paper's own counterexample,
  made executable: with a hypothetical *pure* ``getException`` the
  shared ``let x = ... in gx == gx`` always yields True, while the
  β-expanded form can yield False when the two occurrences resolve
  their choices differently.  (In the paper's actual design this cannot
  happen because ``getException`` is in the IO monad — Section 3.5.)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.core.excset import Exc
from repro.lang.ast import Expr
from repro.machine.eval import Env, Machine
from repro.machine.heap import MachineDiverged, ObjRaise
from repro.machine.observe import Diverged, Exceptional, Normal, Outcome
from repro.machine.strategy import Strategy
from repro.machine.values import VCon, VInt, VStr, Value


class ChoiceStrategy(Strategy):
    """A strategy driven by an explicit choice sequence.

    Each binary strict primitive is a choice point; the k-th choice
    point takes its order from ``choices[k]`` (0 = left-to-right,
    1 = right-to-left).  Past the end of the sequence it defaults to 0
    and records that a new choice point was reached — the enumerator
    uses this to schedule the alternative run.
    """

    def __init__(self, choices: Sequence[int]) -> None:
        self.choices = list(choices)
        self.used = 0
        self.overflowed = False
        self.name = f"choice({''.join(map(str, choices))})"

    def order(self, op: str, n: int) -> Tuple[int, ...]:
        if n < 2:
            return tuple(range(n))
        index = self.used
        self.used += 1
        if index < len(self.choices):
            pick = self.choices[index]
        else:
            self.overflowed = True
            pick = 0
        if pick == 0:
            return tuple(range(n))
        return tuple(reversed(range(n)))


def _freeze_outcome(outcome: Outcome) -> Tuple:
    if isinstance(outcome, Normal):
        value = outcome.value
        if isinstance(value, VInt):
            return ("ok-int", value.value)
        if isinstance(value, VStr):
            return ("ok-str", value.value)
        if isinstance(value, VCon):
            return ("ok-con", value.name)
        return ("ok", str(value))
    if isinstance(outcome, Exceptional):
        return ("exc", outcome.exc.name, outcome.exc.arg)
    return ("diverge",)


def collect_outcomes(
    expr: Expr,
    env_builder=None,
    fuel: int = 200_000,
    max_runs: int = 256,
) -> FrozenSet[Tuple]:
    """All machine outcomes over every evaluation-order resolution.

    ``env_builder(machine) -> Env`` supplies the environment (e.g. the
    prelude); None means an empty environment.  Exploration is DFS over
    choice-point prefixes, capped at ``max_runs`` runs.
    """
    outcomes: Set[Tuple] = set()
    pending: List[List[int]] = [[]]
    seen_prefixes: Set[Tuple[int, ...]] = set()
    runs = 0
    while pending and runs < max_runs:
        prefix = pending.pop()
        key = tuple(prefix)
        if key in seen_prefixes:
            continue
        seen_prefixes.add(key)
        runs += 1
        strategy = ChoiceStrategy(prefix)
        machine = Machine(strategy=strategy, fuel=fuel)
        env: Env = env_builder(machine) if env_builder else {}
        try:
            value = machine.eval(expr, env)
            outcomes.add(_freeze_outcome(Normal(value)))
        except ObjRaise as err:
            outcomes.add(_freeze_outcome(Exceptional(err.exc)))
        except MachineDiverged:
            outcomes.add(_freeze_outcome(Diverged()))
        # Schedule the unexplored sibling of every choice point this
        # run reached beyond the fixed prefix.
        for position in range(len(prefix), strategy.used):
            sibling = prefix + [0] * (position - len(prefix)) + [1]
            pending.append(sibling)
    return frozenset(outcomes)


@dataclass(frozen=True)
class BetaFailureDemo:
    """The result of the Section 3.4 β-failure experiment."""

    shared_outcomes: FrozenSet[Tuple]
    substituted_outcomes: FrozenSet[Tuple]

    @property
    def beta_valid(self) -> bool:
        """β would be valid iff the two outcome sets coincide."""
        return self.shared_outcomes == self.substituted_outcomes


def demonstrate_beta_failure(fuel: int = 100_000) -> BetaFailureDemo:
    """Run the paper's counterexample under the non-deterministic
    baseline.

    A pure exception observer is simulated with ``mapException``-style
    machinery: ``observe e`` evaluates ``e`` and converts the escaping
    exception to a distinguishing integer.  Shared form::

        let x = (1/0) + raise (UserError "Urk") in obs x == obs x

    always True (the thunk memoises its first resolution).
    Substituted form: each occurrence re-evaluates with its own
    choices, so the two observations can differ.
    """
    from repro.lang.match import flatten_case_patterns
    from repro.lang.parser import parse_expr

    # The hypothetical pure getException is simulated in Python: we
    # build a pair, force each component separately (each forcing is
    # one "occurrence" of getException), and compare the escaping
    # exceptions.  The object-language `error` needs the prelude; use
    # raise (UserError ...) directly to stay self-contained.
    shared = flatten_case_patterns(
        parse_expr(
            "let { x = (1 `div` 0) + raise (UserError \"Urk\") } in "
            "Tuple2 x x"
        )
    )
    substituted = flatten_case_patterns(
        parse_expr(
            "Tuple2 ((1 `div` 0) + raise (UserError \"Urk\")) "
            "((1 `div` 0) + raise (UserError \"Urk\"))"
        )
    )

    def equal_observations(expr: Expr) -> FrozenSet[Tuple]:
        """For every choice resolution: observe both components of the
        pair (the pure-getException simulation) and record whether the
        two observed exceptions coincide."""
        results: Set[Tuple] = set()
        pending: List[List[int]] = [[]]
        seen: Set[Tuple[int, ...]] = set()
        runs = 0
        while pending and runs < 64:
            prefix = pending.pop()
            key = tuple(prefix)
            if key in seen:
                continue
            seen.add(key)
            runs += 1
            strategy = ChoiceStrategy(prefix)
            machine = Machine(strategy=strategy, fuel=fuel)
            value = machine.eval(expr, {})
            assert isinstance(value, VCon) and value.name == "Tuple2"
            observed: List[Optional[Exc]] = []
            for cell in value.args:
                try:
                    cell.force(machine)
                    observed.append(None)
                except ObjRaise as err:
                    observed.append(err.exc)
            results.add(("equal", observed[0] == observed[1]))
            for position in range(len(prefix), strategy.used):
                pending.append(
                    prefix + [0] * (position - len(prefix)) + [1]
                )
        return frozenset(results)

    return BetaFailureDemo(
        shared_outcomes=equal_observations(shared),
        substituted_outcomes=equal_observations(substituted),
    )
