"""The fixed-evaluation-order baseline (Section 3.4, first option).

"The semantics could state that + evaluates its first argument first,
so that if its first argument is exceptional then that's the exception
that is returned.  This is the most common approach, adopted by (among
others) ML, FL, and some proposals for Haskell.  It gives rise to a
simple semantics, but has the Very Bad Feature that it invalidates many
useful transformations."

The baseline reuses the core evaluator with three knobs flipped:

* ``prim_mode="left-first"`` — the first exceptional argument wins;
* ``case_mode="naive"`` — an exceptional scrutinee propagates alone (no
  exception-finding union over alternatives);
* ``app_unions_arg=False`` — applying an exceptional function ignores
  the argument.

With these settings every ``Bad`` carries the exceptions of one fixed
path, so denotations behave like the single-exception semantics of
ML-style languages (sets stay singletons for programs whose raises are
singletons).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.denote import DenoteContext, denote, ensure_recursion_headroom
from repro.core.domains import SemVal, Thunk
from repro.lang.ast import Expr


def fixed_order_ctx(fuel: int = 200_000) -> DenoteContext:
    """A context implementing the fixed left-to-right order semantics."""
    return DenoteContext(
        fuel=fuel,
        case_mode="naive",
        prim_mode="left-first",
        app_unions_arg=False,
    )


def naive_case_ctx(fuel: int = 200_000) -> DenoteContext:
    """Imprecise primitives but the *naive* case rule — the halfway
    design E7 uses to show why exception-finding mode is necessary."""
    return DenoteContext(fuel=fuel, case_mode="naive")


def denote_fixed_order(
    expr: Expr,
    env: Optional[Dict[str, Thunk]] = None,
    fuel: int = 200_000,
) -> SemVal:
    """Denote under the fixed-evaluation-order semantics."""
    ensure_recursion_headroom()
    ctx = fixed_order_ctx(fuel)
    return denote(expr, dict(env) if env else {}, ctx)
