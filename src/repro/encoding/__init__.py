"""The explicit exceptions-as-values encoding (Section 2.1) — the
baseline the paper's design is measured against."""

from repro.encoding.exval import (
    EncodeError,
    encode_expr,
    encode_program,
    encoding_overhead,
)

__all__ = [
    "EncodeError",
    "encode_expr",
    "encode_program",
    "encoding_overhead",
]
