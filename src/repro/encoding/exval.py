"""The explicit ``ExVal`` encoding of exceptions (Section 2.1).

A mechanical translation of a pure program into one where every
evaluation step returns ``OK v`` or ``Bad exception`` and every
consumer performs the case analysis by hand — the paper's Section 2.2
example made systematic::

    (f x) + (g y)
  ==>
    case (f x) of
      Bad ex -> Bad ex
      OK xv  -> case (g y) of
                  Bad ex -> Bad ex
                  OK yv  -> OK (xv + yv)

This is the *baseline* the imprecise design is measured against, and
the translation deliberately reproduces the baseline's documented
flaws:

* **Excessive clutter** — code size blows up (measured by E2);
* **Poor efficiency** — a test-and-propagate at every call site
  (measured by E2: machine steps and allocations);
* **Increased strictness** — arguments are checked when passed, so
  ``const 3 (1 `div` 0)`` becomes ``Bad DivideByZero`` instead of
  ``OK 3`` (asserted by the tests; it is Section 2.2's first bullet);
* **Fixed evaluation order** — the sequencing bakes in left-to-right,
  so the encoding is only adequate against the left-to-right machine
  strategy.

Calling convention: lambda- and pattern-bound variables hold *raw*
(unencoded) payloads; ``let``- and top-level-bound variables hold
*encoded* (``ExVal``) values.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from repro.lang.ast import (
    Alt,
    App,
    Case,
    Con,
    Expr,
    Fix,
    Lam,
    Let,
    Lit,
    Pattern,
    PCon,
    PrimOp,
    Program,
    PVar,
    PWild,
    Raise,
    Var,
    expr_size,
    program_size,
)
from repro.lang.names import NameSupply, bound_vars, free_vars


class EncodeError(Exception):
    """The expression uses a feature outside the encodable fragment
    (IO actions, ``fix``, ``mapException``)."""


_UNENCODABLE_PRIMS = frozenset(
    [
        "mapException",
        "returnIO",
        "bindIO",
        "getChar",
        "putChar",
        "putStr",
        "getException",
        "ioError",
    ]
)


class _Encoder:
    def __init__(self, supply: NameSupply) -> None:
        self.supply = supply

    def ok(self, expr: Expr) -> Expr:
        return Con("OK", (expr,), 1)

    def check(self, encoded: Expr, then) -> Expr:
        """``case encoded of Bad ex -> Bad ex; OK v -> then(Var v)``."""
        ex = self.supply.fresh("ex")
        v = self.supply.fresh("v")
        return Case(
            encoded,
            (
                Alt(PCon("Bad", (PVar(ex),)), Con("Bad", (Var(ex),), 1)),
                Alt(PCon("OK", (PVar(v),)), then(Var(v))),
            ),
        )

    def check_all(self, encodeds: List[Expr], then) -> Expr:
        """Sequence several checks left to right, collecting payloads."""
        payloads: List[Expr] = []

        def go(remaining: List[Expr]) -> Expr:
            if not remaining:
                return then(payloads)
            head, rest = remaining[0], remaining[1:]
            return self.check(
                head, lambda v: (payloads.append(v), go(rest))[1]
            )

        return go(encodeds)

    # Checked primitive -> unchecked variant.  The encoded program must
    # represent every failure as an explicit Bad value, so the machine's
    # raising primitives are replaced: division gets an explicit
    # divisor guard, and overflow checking is elided (the encoded
    # baseline treats arithmetic as total except division — documented
    # in DESIGN.md as part of the Section 2.1 baseline's fragment).
    _UNCHECKED = {
        "+": "uadd",
        "-": "usub",
        "*": "umul",
        "negate": "unegate",
    }

    def _encoded_prim(self, op: str, payloads: List[Expr]) -> Expr:
        if op in self._UNCHECKED:
            return self.ok(PrimOp(self._UNCHECKED[op], tuple(payloads)))
        if op in ("div", "mod"):
            numerator, divisor = payloads
            unchecked = "udiv" if op == "div" else "umod"
            return Case(
                PrimOp("==", (divisor, Lit(0, "int"))),
                (
                    Alt(
                        PCon("True"),
                        Con("Bad", (Con("DivideByZero", (), 0),), 1),
                    ),
                    Alt(
                        PCon("False"),
                        self.ok(PrimOp(unchecked, (numerator, divisor))),
                    ),
                ),
            )
        # Remaining primitives (comparisons, string ops) cannot raise.
        return self.ok(PrimOp(op, tuple(payloads)))

    def encode(self, expr: Expr, encoded_vars: FrozenSet[str]) -> Expr:
        if isinstance(expr, Var):
            if expr.name in encoded_vars:
                return expr
            return self.ok(expr)
        if isinstance(expr, Lit):
            return self.ok(expr)
        if isinstance(expr, Lam):
            return self.ok(
                Lam(expr.var, self.encode(expr.body, encoded_vars - {expr.var}))
            )
        if isinstance(expr, App):
            fn_enc = self.encode(expr.fn, encoded_vars)
            arg_enc = self.encode(expr.arg, encoded_vars)
            return self.check(
                fn_enc,
                lambda f: self.check(arg_enc, lambda a: App(f, a)),
            )
        if isinstance(expr, Con):
            arg_encs = [self.encode(a, encoded_vars) for a in expr.args]
            return self.check_all(
                arg_encs,
                lambda vs: self.ok(Con(expr.name, tuple(vs), expr.arity)),
            )
        if isinstance(expr, Case):
            scrut_enc = self.encode(expr.scrutinee, encoded_vars)

            def branch(v: Expr) -> Expr:
                alts = []
                for alt in expr.alts:
                    from repro.lang.ast import pattern_vars

                    shadowed = frozenset(pattern_vars(alt.pattern))
                    alts.append(
                        Alt(
                            alt.pattern,
                            self.encode(alt.body, encoded_vars - shadowed),
                        )
                    )
                # Encoded pattern-match failure: Bad PatternMatchFail.
                alts.append(
                    Alt(
                        PWild(),
                        Con("Bad", (Con("PatternMatchFail", (), 0),), 1),
                    )
                )
                return Case(v, tuple(alts))

            return self.check(scrut_enc, branch)
        if isinstance(expr, Raise):
            exc_enc = self.encode(expr.exc, encoded_vars)
            return self.check(exc_enc, lambda v: Con("Bad", (v,), 1))
        if isinstance(expr, PrimOp):
            if expr.op in _UNENCODABLE_PRIMS:
                raise EncodeError(
                    f"primitive {expr.op!r} is outside the encodable "
                    "(pure, first-order) fragment"
                )
            if expr.op == "seq":
                first = self.encode(expr.args[0], encoded_vars)
                second = self.encode(expr.args[1], encoded_vars)
                return self.check(first, lambda _v: second)
            arg_encs = [self.encode(a, encoded_vars) for a in expr.args]
            return self.check_all(
                arg_encs,
                lambda vs: self._encoded_prim(expr.op, vs),
            )
        if isinstance(expr, Fix):
            raise EncodeError(
                "fix is outside the encodable fragment (use let recursion)"
            )
        if isinstance(expr, Let):
            names = frozenset(name for name, _ in expr.binds)
            inner = encoded_vars | names
            binds = tuple(
                (name, self.encode(rhs, inner)) for name, rhs in expr.binds
            )
            return Let(binds, self.encode(expr.body, inner))
        raise EncodeError(f"cannot encode {expr!r}")


def encode_expr(
    expr: Expr,
    encoded_vars: FrozenSet[str] = frozenset(),
    supply: Optional[NameSupply] = None,
) -> Expr:
    """Encode one expression.  ``encoded_vars`` names the variables in
    scope that already hold ``ExVal``-encoded values (e.g. top-level
    bindings of an encoded program)."""
    if supply is None:
        supply = NameSupply(avoid=free_vars(expr) | bound_vars(expr))
    return _Encoder(supply).encode(expr, encoded_vars)


def encode_program(program: Program) -> Program:
    """Encode a whole program; every top-level binding becomes
    ``ExVal``-valued."""
    names = frozenset(name for name, _ in program.binds)
    binds = []
    for name, rhs in program.binds:
        supply = NameSupply(avoid=free_vars(rhs) | bound_vars(rhs) | names)
        binds.append((name, _Encoder(supply).encode(rhs, names)))
    return Program(program.data_decls, tuple(binds), ())


def encoding_overhead(program: Program) -> Tuple[int, int, float]:
    """(original size, encoded size, ratio) — the paper's "substantial
    cost in code size" (Section 2.2), quantified."""
    encoded = encode_program(program)
    before = program_size(program)
    after = program_size(encoded)
    return before, after, after / before if before else float("inf")
