"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run FILE        perform a program's ``main`` (IO) action
eval EXPR       evaluate an expression on the lazy machine
denote EXPR     print the denotation (the exception *set*)
law LHS RHS     classify a law: identity / refinement / unsound
trace EXPR      enumerate every behaviour the §4.4 LTS permits
profile EXPR    run under the tracing/metrics layer (docs/OBSERVABILITY.md)
explain FILE    provenance: where each member of the exception set comes from
bench           re-run the claim benchmarks and diff against the seeds
optimise EXPR   run an optimisation level and pretty-print the result
typecheck FILE  infer and print the types of a module's bindings
fuzz            differential fuzzing: cross-evaluator oracle + shrinker
chaos EXPR      interrupt-schedule explorer: §5.1 soundness at every step
serve           resilient evaluate-as-a-service HTTP daemon
top             live dashboard: poll a daemon's /healthz + /metrics

Examples
--------
    python -m repro denote '(1 `div` 0) + error "Urk"'
    python -m repro eval   '(1 `div` 0) + error "Urk"' --strategy right-to-left
    python -m repro law    'a + b' 'b + a' --semantics fixed-order
    python -m repro run    examples/hello.hs --stdin "x"
    python -m repro profile 'sum [1, 2, 3]' --trace out.jsonl --format json
    python -m repro profile 'fib 12' --flame out.folded --backend compiled
    python -m repro explain examples/two_faults.hs
    python -m repro bench  --experiments E1b,E13
    python -m repro fuzz   --iterations 500 --seed 0 --format json
    python -m repro fuzz   --replay tests/fuzz/corpus/regressions.jsonl
    python -m repro chaos  'fib 10' --backend both --sample 100
    python -m repro serve  --port 8080 --max-concurrency 4
    python -m repro top    --url http://127.0.0.1:8080 --interval 1
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.api import (
    check_law_sources,
    compile_expr,
    compile_program,
    denote_source,
    observe_source,
    run_io_program,
)
from repro.baselines.fixed_order import fixed_order_ctx, naive_case_ctx
from repro.core.denote import DenoteContext
from repro.io.transition import enumerate_outcomes
from repro.lang.pretty import pretty
from repro.machine.strategy import LeftToRight, RightToLeft, Shuffled

_STRATEGIES = {
    "left-to-right": LeftToRight,
    "right-to-left": RightToLeft,
}

_SEMANTICS = {
    "imprecise": lambda fuel: DenoteContext(fuel=fuel),
    "fixed-order": fixed_order_ctx,
    "naive-case": naive_case_ctx,
}


def _strategy(name: str):
    if name in _STRATEGIES:
        return _STRATEGIES[name]()
    if name.startswith("shuffled:"):
        return Shuffled(int(name.split(":", 1)[1]))
    raise SystemExit(
        f"unknown strategy {name!r} "
        f"(choose from {sorted(_STRATEGIES)} or shuffled:<seed>)"
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "A Semantics for Imprecise Exceptions (PLDI 1999) — "
            "reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="perform a program's main action")
    run.add_argument("file")
    run.add_argument("--stdin", default="")
    run.add_argument("--entry", default="main")
    run.add_argument("--strategy", default="left-to-right")
    run.add_argument("--fuel", type=int, default=2_000_000)
    run.add_argument("--typecheck", action="store_true")
    run.add_argument(
        "--backend",
        default="ast",
        choices=["ast", "compiled", "super"],
        help="machine backend (docs/PERFORMANCE.md)",
    )
    run.add_argument(
        "--profile-in",
        default=None,
        metavar="PROFILE.folded",
        help="folded-stacks profile (from `repro profile --flame`) "
        "narrowing superinstruction fusion to hot spans; requires "
        "--backend super",
    )

    ev = sub.add_parser("eval", help="evaluate on the lazy machine")
    ev.add_argument("expr")
    ev.add_argument("--strategy", default="left-to-right")
    ev.add_argument("--fuel", type=int, default=2_000_000)
    ev.add_argument("--deep", action="store_true")
    ev.add_argument(
        "--backend",
        default="ast",
        choices=["ast", "compiled", "super"],
        help="machine backend (docs/PERFORMANCE.md)",
    )
    ev.add_argument(
        "--profile-in",
        default=None,
        metavar="PROFILE.folded",
        help="folded-stacks profile (from `repro profile --flame`) "
        "narrowing superinstruction fusion to hot spans; requires "
        "--backend super",
    )

    de = sub.add_parser("denote", help="print the denotation")
    de.add_argument("expr")
    de.add_argument("--fuel", type=int, default=200_000)
    de.add_argument(
        "--semantics", default="imprecise", choices=sorted(_SEMANTICS)
    )
    de.add_argument(
        "--deep",
        action="store_true",
        help="force through constructor fields (lurking exceptions "
        "render as <Bad {...}>)",
    )

    law = sub.add_parser(
        "law",
        help="classify lhs -> rhs",
        description=(
            "Laws quantify over well-typed environments.  Variable "
            "naming convention: p/q/r range over Booleans, x/y over "
            "pairs, names passed via --functions over total "
            "functions, everything else over scalars "
            "(ints/bools/Bads/bottom).  Use --plain to disable the "
            "convention."
        ),
    )
    law.add_argument("lhs")
    law.add_argument("rhs")
    law.add_argument(
        "--semantics", default="imprecise", choices=sorted(_SEMANTICS)
    )
    law.add_argument("--functions", default="",
                     help="comma-separated function-valued variables")
    law.add_argument(
        "--plain",
        action="store_true",
        help="disable the p/q/r + x/y typed-variable convention",
    )

    tr = sub.add_parser(
        "trace", help="enumerate permitted IO behaviours"
    )
    tr.add_argument("expr")
    tr.add_argument("--stdin", default="")
    tr.add_argument("--fuel", type=int, default=100_000)

    pro = sub.add_parser(
        "profile",
        help="evaluate with the observability layer attached",
        description=(
            "Run EXPR under a counting trace sink with per-phase "
            "timers, on the lazy machine, the denotational evaluator, "
            "or both.  The event taxonomy and overhead guarantee are "
            "documented in docs/OBSERVABILITY.md."
        ),
    )
    pro.add_argument("expr")
    pro.add_argument("--strategy", default="left-to-right")
    pro.add_argument("--fuel", type=int, default=2_000_000)
    pro.add_argument(
        "--denote-fuel",
        type=int,
        default=200_000,
        help="fuel for the denotational layer (--layer denote/both)",
    )
    pro.add_argument(
        "--layer",
        default="machine",
        choices=["machine", "denote", "both"],
    )
    pro.add_argument(
        "--trace",
        default=None,
        metavar="OUT.jsonl",
        help="stream every event to a JSON Lines file",
    )
    pro.add_argument(
        "--format", default="table", choices=["table", "json"]
    )
    pro.add_argument("--deep", action="store_true")
    pro.add_argument(
        "--backend",
        default="ast",
        choices=["ast", "compiled", "super"],
        help="machine backend (docs/PERFORMANCE.md)",
    )
    pro.add_argument(
        "--attribution",
        action="store_true",
        help="aggregate machine cost per source span",
    )
    pro.add_argument(
        "--flame",
        default=None,
        metavar="OUT.folded",
        help="write folded stacks (steps per span stack) for "
        "flamegraph viewers; implies --attribution",
    )

    ex = sub.add_parser(
        "explain",
        help="provenance for every member of an exception set",
        description=(
            "Denote FILE to its full exception set, then observe it "
            "under several strategies with provenance recording on.  "
            "Prints, per member, the raise site (source span), an "
            "abbreviated force chain, and the strategy that surfaced "
            "it; members no sampled strategy surfaced are listed with "
            "their denotational introduction site instead "
            "(docs/OBSERVABILITY.md, 'Provenance & attribution')."
        ),
    )
    ex.add_argument("file", help="file containing an expression or module")
    ex.add_argument("--entry", default="main",
                    help="entry binding when FILE is a module")
    ex.add_argument("--fuel", type=int, default=2_000_000)
    ex.add_argument("--denote-fuel", type=int, default=200_000)
    ex.add_argument(
        "--seeds",
        type=int,
        default=4,
        help="number of shuffled strategies to sample besides "
        "left-to-right and right-to-left",
    )
    ex.add_argument(
        "--backend",
        default="ast",
        choices=["ast", "compiled", "super"],
        help="machine backend (docs/PERFORMANCE.md)",
    )

    be = sub.add_parser(
        "bench",
        help="re-run claim benchmarks, diff against checked-in seeds",
        description=(
            "Run the E1/E1b/E2/E13/E16/E18 benchmark files into a fresh "
            "records directory, compare the BENCH_*.json rows against "
            "benchmarks/records/, and exit 1 when a deterministic "
            "metric regressed by more than 20%% (wall-clock fields "
            "are reported but not gated)."
        ),
    )
    be.add_argument(
        "--experiments",
        default="",
        help="comma-separated subset (e.g. E1b,E13); default all",
    )
    be.add_argument(
        "--seed-dir",
        default=None,
        help="seed records directory (default benchmarks/records)",
    )
    be.add_argument(
        "--records",
        default=None,
        metavar="DIR",
        help="compare an existing records directory instead of "
        "re-running the benchmarks",
    )
    be.add_argument(
        "--update",
        action="store_true",
        help="refresh the seed records from this run instead of "
        "comparing",
    )
    be.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run up to N experiments in parallel, one pytest "
        "subprocess each (0 = one worker per experiment); records "
        "and gate verdict are identical to a serial run",
    )
    be.add_argument(
        "--format", default="table", choices=["table", "json"]
    )

    opt = sub.add_parser("optimise", help="apply an optimisation level")
    opt.add_argument("expr")
    opt.add_argument("--level", default="O2")

    tc = sub.add_parser("typecheck", help="infer a module's types")
    tc.add_argument("file")

    fz = sub.add_parser(
        "fuzz",
        help="differential fuzzing across all evaluators",
        description=(
            "Generate seeded random programs and run each through the "
            "denotational reference, the lazy machine under every "
            "strategy, the ExVal encoding, and the fixed-order "
            "baseline, classifying every lane as agree / refinement / "
            "divergence (docs/FUZZING.md).  Genuine divergences are "
            "shrunk and the exit status is non-zero.  With --replay, "
            "re-run a corpus instead and check the recorded verdicts."
        ),
    )
    fz.add_argument("--iterations", type=int, default=None,
                    help="number of cases (default 200 unless --seconds)")
    fz.add_argument("--seconds", type=float, default=None,
                    help="wall-clock budget; combines with --iterations")
    fz.add_argument("--seed", type=int, default=0,
                    help="base seed; case i uses seed+i")
    fz.add_argument("--replay", metavar="CORPUS.jsonl", default=None,
                    help="replay a corpus instead of generating")
    fz.add_argument("--save", metavar="CORPUS.jsonl", default=None,
                    help="append shrunk divergences to this corpus")
    fz.add_argument("--max-depth", type=int, default=5)
    fz.add_argument("--io-fraction", type=float, default=0.25)
    fz.add_argument("--no-fix", action="store_true",
                    help="disable Fix/recursion arms")
    fz.add_argument("--no-io", action="store_true",
                    help="pure programs only")
    fz.add_argument("--no-strings", action="store_true",
                    help="disable string literals and primitives")
    fz.add_argument("--no-prelude", action="store_true",
                    help="disable prelude-calling arms")
    fz.add_argument("--no-catch", action="store_true",
                    help="disable catchIO wrapping in IO programs")
    fz.add_argument("--no-warm-lane", action="store_true",
                    help="disable the warm-fork parity lane (the "
                    "snapshot fork vs cold start differential, "
                    "docs/SERVING.md)")
    fz.add_argument("--no-shrink", action="store_true",
                    help="report divergences unshrunk")
    fz.add_argument("--max-findings", type=int, default=10,
                    help="stop after this many divergences")
    fz.add_argument("--jobs", type=int, default=1,
                    help="shard across N worker processes with "
                    "deterministic per-shard case indices "
                    "(docs/FUZZING.md)")
    fz.add_argument("--guided", action="store_true",
                    help="coverage-guided generation: retarget the "
                    "generator weights from feature-map deficits")
    fz.add_argument("--retarget-every", type=int, default=25,
                    help="guided mode: recompute weights every N "
                    "iterations per shard")
    fz.add_argument("--no-probe", action="store_true",
                    help="skip the per-case interrupt probe")
    fz.add_argument("--probe-sample", type=float, default=1.0,
                    metavar="R",
                    help="probe only a seeded R-fraction of cases "
                    "(0 < R <= 1; selection is a per-case hash of "
                    "the base seed, so it is identical across "
                    "--jobs shardings)")
    fz.add_argument(
        "--format", default="table", choices=["table", "json"]
    )

    ch = sub.add_parser(
        "chaos",
        help="interrupt-schedule explorer (§5.1 soundness)",
        description=(
            "Evaluate EXPR once uninterrupted, then once per delivery "
            "point with an asynchronous exception scheduled exactly "
            "there, asserting that every interrupted run observes "
            "either the uninterrupted outcome or the injected "
            "exception (docs/ROBUSTNESS.md).  --self-test instead "
            "runs the sweep against a deliberately unsound harness "
            "and requires the checker to catch it."
        ),
    )
    ch.add_argument("expr", nargs="?", default=None,
                    help="expression to sweep (or use --file)")
    ch.add_argument("--file", default=None,
                    help="read the expression from a file")
    ch.add_argument(
        "--exc",
        default="ControlC",
        choices=["ControlC", "Timeout", "StackOverflow", "HeapOverflow"],
        help="the asynchronous exception to inject",
    )
    ch.add_argument(
        "--backend",
        default="both",
        choices=["ast", "compiled", "super", "both", "all"],
        help="backend(s) to sweep: both = ast+compiled, "
        "all = every backend",
    )
    ch.add_argument("--fuel", type=int, default=2_000_000)
    ch.add_argument("--limit", type=int, default=None,
                    help="check only the first N delivery points")
    ch.add_argument("--sample", type=int, default=None,
                    help="check N evenly spaced delivery points instead "
                    "of all of them")
    ch.add_argument("--self-test", action="store_true",
                    help="verify the checker catches a planted-unsound "
                    "harness (on every selected --sweep axis)")
    ch.add_argument(
        "--sweep",
        default="interrupt",
        choices=["interrupt", "alloc", "latency", "schedule", "all"],
        help="which fault axis to sweep: interrupt delivery steps, "
        "alloc-fail thresholds, latency-stall placements, "
        "cooperative-scheduler interleavings (slice sizes × rotation "
        "seeds over a built-in mixed-tenant workload — EXPR is "
        "ignored), or all four (docs/ROBUSTNESS.md)",
    )
    ch.add_argument(
        "--format", default="table", choices=["table", "json"]
    )

    sv = sub.add_parser(
        "serve",
        help="resilient evaluate-as-a-service HTTP daemon",
        description=(
            "Serve POST /eval (evaluate an expression — or a "
            '{"programs": [...]} batch — under a per-request resource '
            "governor), GET /healthz (service counters) and GET "
            "/metrics (Prometheus text exposition) on a "
            "stdlib-only threaded HTTP server.  By default requests "
            "fork a warm prelude snapshot and repeat programs are "
            "served from a content-addressed compile cache "
            "(docs/SERVING.md); deadlines and allocation caps are "
            "delivered as the paper's Section 5.1 fictitious "
            "exceptions (docs/ROBUSTNESS.md).  Flags and response "
            "fields are generated from repro.serve.schema — the same "
            "source of truth as the documentation."
        ),
    )
    # One source of truth for the flag surface: repro.serve.schema
    # (the sync test pins --help against the docs tables).
    from repro.serve.schema import add_serve_flags

    add_serve_flags(sv)

    tp = sub.add_parser(
        "top",
        help="live dashboard for a running repro serve daemon",
        description=(
            "Poll GET /healthz and GET /metrics on a running daemon "
            "and render a top-style screen: request rate, in-flight, "
            "breaker state, cache hit ratio, governor trips and "
            "latency percentiles re-derived from the exposition's "
            "histogram buckets (docs/OBSERVABILITY.md)."
        ),
    )
    tp.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="base URL of the daemon (default %(default)s)",
    )
    tp.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls (default %(default)s)",
    )
    tp.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop after N frames (default: run until interrupted)",
    )
    tp.add_argument(
        "--no-clear",
        action="store_false",
        dest="clear",
        default=True,
        help="append frames instead of clearing the screen",
    )
    return parser


def _check_profile_in(args) -> Optional[int]:
    """--profile-in only means something to the super backend."""
    if args.profile_in is not None and args.backend != "super":
        print(
            "error: --profile-in requires --backend super",
            file=sys.stderr,
        )
        return 2
    return None


def _cmd_run(args) -> int:
    status = _check_profile_in(args)
    if status is not None:
        return status
    with open(args.file) as handle:
        source = handle.read()
    result = run_io_program(
        source,
        entry=args.entry,
        stdin=args.stdin,
        strategy=_strategy(args.strategy),
        fuel=args.fuel,
        typecheck=args.typecheck,
        backend=args.backend,
        profile=args.profile_in,
    )
    sys.stdout.write(result.stdout)
    if result.status == "exception":
        print(f"\n*** uncaught exception: {result.exc}", file=sys.stderr)
        return 1
    if result.status == "diverged":
        print("\n*** diverged (fuel exhausted)", file=sys.stderr)
        return 2
    return 0


def _cmd_eval(args) -> int:
    status = _check_profile_in(args)
    if status is not None:
        return status
    outcome = observe_source(
        args.expr,
        strategy=_strategy(args.strategy),
        fuel=args.fuel,
        deep=args.deep,
        backend=args.backend,
        profile=args.profile_in,
    )
    from repro.machine import Machine, Normal
    from repro.machine.observe import show_value

    if isinstance(outcome, Normal):
        # Re-run to render with a machine in hand (outputs lazily).
        extra = (
            {"profile": args.profile_in}
            if args.profile_in is not None
            else {}
        )
        machine = Machine(
            strategy=_strategy(args.strategy),
            fuel=args.fuel,
            backend=args.backend,
            **extra,
        )
        from repro.prelude.loader import machine_env

        value = machine.eval(
            compile_expr(args.expr), machine_env(machine)
        )
        print(show_value(value, machine))
        return 0
    print(str(outcome))
    return 0


def _cmd_denote(args) -> int:
    ctx = _SEMANTICS[args.semantics](args.fuel)
    value = denote_source(args.expr, ctx=ctx)
    if args.deep:
        from repro.core.render import show_semval

        print(show_semval(value))
    else:
        print(str(value))
    return 0


def _cmd_law(args) -> int:
    from repro.core.laws import (
        BOOL_BATTERY,
        PAIR_BATTERY,
        TOTAL_FUNCTION_BATTERY,
    )

    kwargs = {}
    if args.semantics != "imprecise":
        factory = _SEMANTICS[args.semantics]
        kwargs["ctx_factory"] = factory
    if not args.plain:
        var_batteries = {
            "p": BOOL_BATTERY,
            "q": BOOL_BATTERY,
            "r": BOOL_BATTERY,
            "x": PAIR_BATTERY,
            "y": PAIR_BATTERY,
        }
        if args.functions:
            for name in args.functions.split(","):
                name = name.strip()
                if name:
                    var_batteries[name] = TOTAL_FUNCTION_BATTERY
        kwargs["var_batteries"] = var_batteries
    elif args.functions:
        kwargs["function_vars"] = [
            f.strip() for f in args.functions.split(",") if f.strip()
        ]
    report = check_law_sources(
        args.lhs, args.rhs, name=f"{args.lhs} -> {args.rhs}", **kwargs
    )
    print(str(report))
    return 0 if report.holds else 1


def _cmd_trace(args) -> int:
    io_value = denote_source(args.expr, fuel=args.fuel)
    for result in sorted(
        enumerate_outcomes(io_value, stdin=args.stdin), key=str
    ):
        print(str(result))
    return 0


def _cmd_profile(args) -> int:
    import sys

    from repro.obs.profile import profile_source

    if args.trace is not None:
        try:
            open(args.trace, "w", encoding="utf-8").close()
        except OSError as err:
            print(
                f"error: cannot open trace file {args.trace}: {err}",
                file=sys.stderr,
            )
            return 1
    report = profile_source(
        args.expr,
        strategy=_strategy(args.strategy),
        fuel=args.fuel,
        denote_fuel=args.denote_fuel,
        layer=args.layer,
        trace=args.trace,
        deep=args.deep,
        backend=args.backend,
        attribution=args.attribution,
        flame=args.flame,
    )
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.to_table())
    return 0


def _cmd_explain(args) -> int:
    from repro.explain import explain_source

    with open(args.file) as handle:
        source = handle.read()
    report = explain_source(
        source,
        entry=args.entry,
        fuel=args.fuel,
        denote_fuel=args.denote_fuel,
        shuffle_seeds=args.seeds,
        backend=args.backend,
    )
    print(report.render())
    return 0


def _cmd_bench(args) -> int:
    import json
    import shutil
    import tempfile

    from repro.benchcompare import (
        DEFAULT_SEED_DIR,
        compare_records,
        load_records,
        run_benchmarks,
    )

    experiments = [
        e.strip() for e in args.experiments.split(",") if e.strip()
    ] or None
    seed_dir = args.seed_dir or DEFAULT_SEED_DIR

    scratch: Optional[str] = None
    try:
        if args.records is not None:
            fresh_dir = args.records
        else:
            scratch = tempfile.mkdtemp(prefix="repro-bench-")
            status = run_benchmarks(scratch, experiments, jobs=args.jobs)
            if status != 0:
                print(
                    f"error: benchmark run failed (pytest exit {status})",
                    file=sys.stderr,
                )
                return status
            fresh_dir = scratch
        fresh = load_records(fresh_dir)
        if not fresh:
            print(
                f"error: no BENCH_*.json records in {fresh_dir}",
                file=sys.stderr,
            )
            return 1

        if args.update:
            os.makedirs(seed_dir, exist_ok=True)
            for name in sorted(os.listdir(fresh_dir)):
                if name.startswith("BENCH_") and name.endswith(".json"):
                    shutil.copyfile(
                        os.path.join(fresh_dir, name),
                        os.path.join(seed_dir, name),
                    )
                    print(f"updated {os.path.join(seed_dir, name)}")
            return 0

        seed = load_records(seed_dir)
        if experiments is not None:
            seed = {k: v for k, v in seed.items() if k in experiments}
            fresh = {k: v for k, v in fresh.items() if k in experiments}
        if not seed:
            print(
                f"error: no seed records in {seed_dir} "
                "(run `repro bench --update` to create them)",
                file=sys.stderr,
            )
            return 1
        comparison = compare_records(seed, fresh)
        if args.format == "json":
            print(json.dumps(comparison.as_dict(), indent=2))
        else:
            print(comparison.table())
        return 0 if comparison.ok else 1
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


def _cmd_optimise(args) -> int:
    from repro.transform.pipeline import pipeline_for

    level = pipeline_for(args.level)
    expr = compile_expr(args.expr)
    print(pretty(level.optimise(expr)))
    return 0


def _cmd_typecheck(args) -> int:
    from repro.api import typecheck_program

    with open(args.file) as handle:
        source = handle.read()
    program = compile_program(source)
    env = typecheck_program(program)
    for name, _rhs in program.binds:
        print(f"{name} :: {env[name]}")
    return 0


def _fuzz_table(summary_dict: dict) -> str:
    lines = []
    shards = (
        f", {summary_dict['jobs']} shards" if "jobs" in summary_dict
        else ""
    )
    guided = " (guided)" if summary_dict.get("guided") else ""
    lines.append(
        f"fuzz: {summary_dict['iterations']} cases, seed "
        f"{summary_dict['seed']}{shards}{guided}, "
        f"{summary_dict['elapsed_seconds']}s"
    )
    verdicts = summary_dict["verdicts"]
    lines.append(
        "verdicts: "
        + ", ".join(f"{k}={v}" for k, v in verdicts.items())
    )
    machine = summary_dict["machine"]
    lines.append(
        f"machine: steps={machine['steps']} raises={machine['raises']} "
        f"allocs={machine['allocs']}"
    )
    for lane, counts in summary_dict["lanes"].items():
        lines.append(
            f"  {lane}: "
            + ", ".join(f"{k}={v}" for k, v in counts.items())
        )
    coverage = summary_dict.get("coverage")
    if coverage and coverage.get("iterations"):
        total = coverage["iterations"]
        lines.append(f"coverage ({total} iterations):")
        for name, hits in coverage["hits"].items():
            rate = hits / total if total else 0.0
            lines.append(f"  {name}: {hits} ({rate:.1%})")
    sampled = summary_dict.get("probe_sampled", 0)
    total = summary_dict.get("probe_total", 0)
    if total and sampled != total:
        lines.append(f"probe: sampled {sampled} of {total} cases")
    for violation in summary_dict.get("probe_violations", []):
        lines.append(f"PROBE VIOLATION: {violation}")
    for finding in summary_dict["findings"]:
        lines.append(
            f"DIVERGENCE (seed {finding['seed']}, "
            f"{finding['original_size']} -> {finding['shrunk_size']} "
            f"nodes): {finding['shrunk_source']}"
        )
    if summary_dict.get("corpus_added"):
        lines.append(f"corpus: {summary_dict['corpus_added']} new entries")
    return "\n".join(lines)


def _cmd_fuzz(args) -> int:
    import json

    from repro.fuzz.corpus import replay_corpus
    from repro.fuzz.engine import run_fuzz
    from repro.fuzz.gen import GenConfig
    from repro.fuzz.oracle import OracleConfig

    if args.replay is not None:
        results = replay_corpus(args.replay)
        payload = {
            "corpus": args.replay,
            "entries": len(results),
            "mismatches": [
                r.to_dict() for r in results if not r.matches
            ],
        }
        if args.format == "json":
            print(json.dumps(payload, indent=2))
        else:
            print(
                f"replayed {payload['entries']} entries from "
                f"{args.replay}: "
                f"{len(payload['mismatches'])} mismatches"
            )
            for mismatch in payload["mismatches"]:
                print(
                    f"  MISMATCH {mismatch['id']}: expected "
                    f"{mismatch['expected']}, observed "
                    f"{mismatch['observed']}: {mismatch['source']}"
                )
        return 1 if payload["mismatches"] else 0

    gen_config = GenConfig(
        max_depth=args.max_depth,
        io_fraction=0.0 if args.no_io else args.io_fraction,
        allow_fix=not args.no_fix,
        allow_strings=not args.no_strings,
        allow_prelude=not args.no_prelude,
        allow_io=not args.no_io,
        allow_catch=not args.no_catch,
    )
    if not 0.0 < args.probe_sample <= 1.0:
        print(
            "error: --probe-sample must be in (0, 1]",
            file=sys.stderr,
        )
        return 2
    if args.jobs > 1:
        from repro.fuzz.fleet import run_fleet

        if args.iterations is None:
            print(
                "error: --jobs requires --iterations (sharding is "
                "index-based)",
                file=sys.stderr,
            )
            return 2
        fleet = run_fleet(
            jobs=args.jobs,
            iterations=args.iterations,
            seed=args.seed,
            guided=args.guided,
            shrink=not args.no_shrink,
            max_findings=args.max_findings,
            probe=not args.no_probe,
            probe_sample=args.probe_sample,
            gen_config=gen_config,
            oracle_config={"warm_lane": not args.no_warm_lane},
            save_path=args.save,
        )
        payload = fleet.to_dict()
        if args.format == "json":
            print(json.dumps(payload, indent=2))
        else:
            print(_fuzz_table(payload))
        return 0 if fleet.ok else 1
    summary = run_fuzz(
        iterations=args.iterations,
        seconds=args.seconds,
        seed=args.seed,
        gen_config=gen_config,
        oracle_config=OracleConfig(warm_lane=not args.no_warm_lane),
        save_path=args.save,
        shrink_findings=not args.no_shrink,
        max_findings=args.max_findings,
        guided=args.guided,
        retarget_every=args.retarget_every,
        probe=not args.no_probe,
        probe_sample=args.probe_sample,
    )
    payload = summary.to_dict()
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        print(_fuzz_table(payload))
    return 1 if summary.divergences or summary.probe_violations else 0


def _cmd_chaos(args) -> int:
    import json

    from repro.chaos.explore import (
        ASYNC_BY_NAME,
        SWEEP_AXES,
        self_test,
        sweep_axis,
    )

    if args.backend == "both":
        backends = ["ast", "compiled"]
    elif args.backend == "all":
        from repro.machine import BACKENDS

        backends = list(BACKENDS)
    else:
        backends = [args.backend]
    axes = list(SWEEP_AXES) if args.sweep == "all" else [args.sweep]

    if args.self_test:
        all_caught = True
        payload = []
        for backend in backends:
            for axis in axes:
                caught, report = self_test(backend=backend, axis=axis)
                all_caught = all_caught and caught
                payload.append(
                    {"backend": backend, "axis": axis, "caught": caught,
                     "report": report.as_dict()}
                )
                if args.format != "json":
                    verdict = "caught" if caught else "MISSED"
                    print(
                        f"self-test [{axis}/{backend}]: planted-unsound "
                        f"harness {verdict}"
                    )
        if args.format == "json":
            print(json.dumps(payload, indent=2))
        return 0 if all_caught else 1

    if args.file is not None:
        with open(args.file) as handle:
            source = handle.read().strip()
    elif args.expr is not None:
        source = args.expr
    else:
        print("error: provide an expression or --file", file=sys.stderr)
        return 2

    exc = ASYNC_BY_NAME[args.exc]
    ok = True
    payload = []
    for backend in backends:
        for axis in axes:
            report = sweep_axis(
                axis,
                source,
                exc=exc,
                backend=backend,
                fuel=args.fuel,
                limit=args.limit,
                sample=args.sample,
            )
            ok = ok and report.ok
            payload.append(report.as_dict())
            if args.format != "json":
                print(report.render())
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    return 0 if ok else 1


def _cmd_serve(args) -> int:
    from repro.serve.http import serve_forever

    return serve_forever(
        host=args.host,
        port=args.port,
        backend=args.backend,
        max_steps=args.max_steps,
        max_allocations=args.max_allocations,
        deadline=args.deadline,
        max_concurrency=args.max_concurrency,
        queue_depth=args.queue_depth,
        retries=args.retries,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
        fault_seed=args.fault_seed,
        warm=args.warm,
        cache_capacity=args.cache_capacity,
        max_batch=args.max_batch,
        telemetry=args.telemetry,
        trace_ring=args.trace_ring,
        trace_log=args.trace_log,
        scheduler=args.scheduler,
        workers=args.workers,
        slice_steps=args.slice_steps,
        tenant_max_in_flight=args.tenant_max_in_flight,
        tenant_step_quota=args.tenant_step_quota,
    )


def _cmd_top(args) -> int:
    from repro.serve.top import run_top

    return run_top(
        url=args.url.rstrip("/"),
        interval=args.interval,
        iterations=args.iterations,
        clear=args.clear,
    )


_COMMANDS = {
    "run": _cmd_run,
    "eval": _cmd_eval,
    "denote": _cmd_denote,
    "law": _cmd_law,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "explain": _cmd_explain,
    "bench": _cmd_bench,
    "optimise": _cmd_optimise,
    "typecheck": _cmd_typecheck,
    "fuzz": _cmd_fuzz,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
    "top": _cmd_top,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
