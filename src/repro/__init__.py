"""repro — a full reproduction of *"A Semantics for Imprecise
Exceptions"* (Peyton Jones, Reid, Hoare, Marlow, Henderson; PLDI 1999).

The package implements, from scratch:

* a lazy mini-Haskell (:mod:`repro.lang`, :mod:`repro.types`,
  :mod:`repro.prelude`);
* the paper's denotational semantics with exceptional values as *sets*
  of exceptions (:mod:`repro.core`);
* an operational lazy machine with stack-trimming exceptions and
  pluggable evaluation strategies — the source of the *imprecision*
  (:mod:`repro.machine`);
* the IO layer: executor and the Section 4.4 labelled transition
  system (:mod:`repro.io`);
* a transformation suite with a semantics-aware verifier
  (:mod:`repro.transform`) and the analyses
  (:mod:`repro.analysis`);
* the baselines the paper argues against: the explicit ``ExVal``
  encoding (:mod:`repro.encoding`), the fixed-evaluation-order
  semantics and the naive non-deterministic semantics
  (:mod:`repro.baselines`).

Quickstart::

    >>> from repro import denote_source, observe_source
    >>> from repro.machine import LeftToRight, RightToLeft
    >>> str(denote_source('(1 `div` 0) + error "Urk"'))
    "Bad {DivideByZero, UserError 'Urk'}"
    >>> observe_source('(1 `div` 0) + error "Urk"',
    ...                strategy=LeftToRight()).exc.name
    'DivideByZero'
    >>> observe_source('(1 `div` 0) + error "Urk"',
    ...                strategy=RightToLeft()).exc.name
    'UserError'
"""

from repro.api import (
    check_law_sources,
    compile_expr,
    compile_program,
    denote_source,
    observe_source,
    prelude_type_env,
    run_io_program,
    run_io_source,
    typecheck_program,
)
from repro.core import (
    BOTTOM,
    Bad,
    DenoteContext,
    ExcSet,
    Ok,
    check_law,
    denote_expr,
    denote_program,
    refines,
    sem_equal,
)

__version__ = "0.1.0"

__all__ = [
    "BOTTOM",
    "Bad",
    "DenoteContext",
    "ExcSet",
    "Ok",
    "check_law",
    "check_law_sources",
    "compile_expr",
    "compile_program",
    "denote_expr",
    "denote_program",
    "denote_source",
    "observe_source",
    "prelude_type_env",
    "refines",
    "run_io_program",
    "run_io_source",
    "sem_equal",
    "typecheck_program",
    "__version__",
]
