"""Occurrence analysis: how often and where a variable is used.

Shared by the inliner (duplication budgets) and by the benchmarks
(code-size accounting for the explicit-encoding comparison, E2).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet

from repro.lang.ast import (
    App,
    Case,
    Con,
    Expr,
    Fix,
    Lam,
    Let,
    Lit,
    PrimOp,
    Raise,
    Var,
    pattern_vars,
)


def occurrences(expr: Expr) -> Counter:
    """Free-variable occurrence counts."""
    counts: Counter = Counter()
    _collect(expr, frozenset(), counts)
    return counts


def _collect(expr: Expr, bound: FrozenSet[str], counts: Counter) -> None:
    if isinstance(expr, Var):
        if expr.name not in bound:
            counts[expr.name] += 1
        return
    if isinstance(expr, Lit):
        return
    if isinstance(expr, Lam):
        _collect(expr.body, bound | {expr.var}, counts)
        return
    if isinstance(expr, App):
        _collect(expr.fn, bound, counts)
        _collect(expr.arg, bound, counts)
        return
    if isinstance(expr, Con):
        for a in expr.args:
            _collect(a, bound, counts)
        return
    if isinstance(expr, Case):
        _collect(expr.scrutinee, bound, counts)
        for alt in expr.alts:
            _collect(
                alt.body, bound | frozenset(pattern_vars(alt.pattern)), counts
            )
        return
    if isinstance(expr, Raise):
        _collect(expr.exc, bound, counts)
        return
    if isinstance(expr, PrimOp):
        for a in expr.args:
            _collect(a, bound, counts)
        return
    if isinstance(expr, Fix):
        _collect(expr.fn, bound, counts)
        return
    if isinstance(expr, Let):
        inner = bound | {name for name, _ in expr.binds}
        for _name, rhs in expr.binds:
            _collect(rhs, inner, counts)
        _collect(expr.body, inner, counts)
        return
    raise TypeError(f"occurrences: unknown expression {expr!r}")


def occurs_free(expr: Expr, name: str) -> bool:
    return occurrences(expr)[name] > 0
