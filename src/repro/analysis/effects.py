"""Exception-freedom (effect) analysis — the baseline of Section 6.

Under a fixed-evaluation-order semantics (ML, FL, Ada), reordering
transformations are only valid when the reordered subexpressions
*provably cannot raise*.  "Compilers often attempt to infer the set of
possible exceptions with a view to lifting these restrictions, but
their power of inference is limited" — this module is that limited
inference, implemented honestly:

* arithmetic may overflow, ``div``/``mod`` may divide by zero, so no
  expression containing them is exception-free (exactly the pessimism
  the paper highlights);
* ``case`` may fail to match unless the alternatives end in a
  catch-all;
* calls to unknown functions may raise ("they must be pessimistic
  across module boundaries in the presence of separate compilation");
* values in WHNF (literals, lambdas, constructor applications) are
  safe *to have around* but their fields may still raise when forced,
  so only WHNF-safety is certified.

E6 counts, over a program corpus, the fraction of reordering sites
this analysis licenses versus the imprecise semantics' "all of them".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lang.ast import (
    App,
    Case,
    Con,
    Expr,
    Fix,
    Lam,
    Let,
    Lit,
    PrimOp,
    Program,
    PVar,
    PWild,
    Raise,
    Var,
    pattern_vars,
)
from repro.lang.ops import PRIM_TABLE

# Primitives that can never raise (given well-typed arguments).
_SAFE_PRIMS = frozenset(
    ["==", "/=", "<", "<=", ">", ">=", "strAppend", "strLen",
     "showInt", "ord", "returnIO", "bindIO", "getChar", "putChar",
     "putStr", "getException", "ioError"]
)
# Primitives that can raise regardless of their arguments' safety.
_UNSAFE_PRIMS = frozenset(["+", "-", "*", "div", "mod", "negate", "chr"])

EffectEnv = Dict[str, bool]  # name -> forcing its WHNF cannot raise


def cannot_raise(
    expr: Expr,
    env: Optional[EffectEnv] = None,
    assume_safe: FrozenSet[str] = frozenset(),
) -> bool:
    """Can forcing ``expr`` to WHNF provably not raise an exception?

    ``env`` gives verdicts for known bindings; ``assume_safe`` lists
    local variables whose cells are known exception-free (pattern
    variables of forced scrutinees, for example, are *not* safe —
    laziness means the exception hides until the field is demanded).
    """
    return _safe(expr, env or {}, assume_safe)


def _safe(expr: Expr, env: EffectEnv, safe_vars: FrozenSet[str]) -> bool:
    if isinstance(expr, Var):
        if expr.name in safe_vars:
            return True
        return env.get(expr.name, False)
    if isinstance(expr, (Lit, Lam)):
        return True
    if isinstance(expr, Con):
        return True  # WHNF already; fields are lazy
    if isinstance(expr, App):
        # Would need the callee's effect signature; across unknown
        # calls we must be pessimistic (separate compilation).
        return False
    if isinstance(expr, Case):
        if not _safe(expr.scrutinee, env, safe_vars):
            return False
        exhaustive = any(
            isinstance(alt.pattern, (PVar, PWild)) for alt in expr.alts
        )
        if not exhaustive:
            return False  # PatternMatchFail possible
        return all(
            _safe(
                alt.body,
                env,
                safe_vars - frozenset(pattern_vars(alt.pattern)),
            )
            for alt in expr.alts
        )
    if isinstance(expr, Raise):
        return False
    if isinstance(expr, PrimOp):
        if expr.op in _UNSAFE_PRIMS:
            return False
        if expr.op == "seq":
            return all(_safe(a, env, safe_vars) for a in expr.args)
        if expr.op == "mapException":
            return _safe(expr.args[1], env, safe_vars)
        if expr.op in _SAFE_PRIMS:
            info = PRIM_TABLE[expr.op]
            return all(
                _safe(expr.args[i], env, safe_vars)
                for i in info.strict_in
                if i < len(expr.args)
            )
        return False
    if isinstance(expr, Fix):
        return False  # may diverge; with pedantic bottoms that is ⊥
    if isinstance(expr, Let):
        inner_safe = safe_vars - {name for name, _ in expr.binds}
        verdicts = dict(env)
        for name, rhs in expr.binds:
            verdicts[name] = _safe(rhs, verdicts, inner_safe)
        return _safe(expr.body, verdicts, inner_safe)
    raise TypeError(f"cannot_raise: unknown expression {expr!r}")


@dataclass(frozen=True)
class ReorderSite:
    """A program point where an optimiser would like to reorder two
    subexpressions (a strict binary primitive, or an application that
    strictness analysis wants to evaluate call-by-value)."""

    kind: str  # "prim" | "app"
    detail: str
    safe_under_fixed_order: bool


def transformable_sites(
    expr: Expr, env: Optional[EffectEnv] = None
) -> List[ReorderSite]:
    """Every reordering site in ``expr``, with the fixed-order verdict.

    Under the imprecise semantics *all* these sites may be reordered;
    under the fixed-order baseline only those whose operands are
    provably exception-free.  E6 aggregates the ratio.
    """
    env = env or {}
    sites: List[ReorderSite] = []

    def go(e: Expr) -> None:
        if isinstance(e, PrimOp):
            info = PRIM_TABLE.get(e.op)
            if info is not None and len(info.strict_in) >= 2:
                operands_safe = all(
                    _safe(e.args[i], env, frozenset())
                    for i in info.strict_in
                )
                sites.append(
                    ReorderSite("prim", e.op, operands_safe)
                )
            for a in e.args:
                go(a)
            return
        if isinstance(e, App):
            # Reordering an application = evaluating the argument
            # early (call-by-value); fixed-order licenses it only if
            # the argument cannot raise (and cannot diverge — folded
            # into our Fix pessimism).
            sites.append(
                ReorderSite(
                    "app", "call-by-value", _safe(e.arg, env, frozenset())
                )
            )
            go(e.fn)
            go(e.arg)
            return
        if isinstance(e, Lam):
            go(e.body)
        elif isinstance(e, Con):
            for a in e.args:
                go(a)
        elif isinstance(e, Case):
            go(e.scrutinee)
            for alt in e.alts:
                go(alt.body)
        elif isinstance(e, Raise):
            go(e.exc)
        elif isinstance(e, Fix):
            go(e.fn)
        elif isinstance(e, Let):
            for _n, rhs in e.binds:
                go(rhs)
            go(e.body)

    go(expr)
    return sites


def program_effect_env(program: Program) -> EffectEnv:
    """Whole-program effect verdicts for top-level bindings (two
    passes: optimistic start would be unsound here, so we start
    pessimistic and only promote — a safe ascending iteration)."""
    env: EffectEnv = {name: False for name, _ in program.binds}
    for _round in range(10):
        changed = False
        for name, rhs in program.binds:
            verdict = _safe(rhs, env, frozenset())
            if verdict and not env[name]:
                env[name] = True
                changed = True
        if not changed:
            break
    return env
