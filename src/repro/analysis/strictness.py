"""Strictness analysis (two-point abstract interpretation).

``strict_in(e, x, env)`` answers: does evaluating ``e`` to WHNF
necessarily evaluate ``x`` to WHNF?  In domain terms: is
``[e][⊥/x] = ⊥``?  If yes, a compiler may evaluate ``x`` *before* ``e``
— the call-by-need -> call-by-value transformation whose validity the
imprecise semantics preserves (Section 3.4: "Haskell compilers perform
strictness analysis ... This crucial transformation changes the
evaluation order").

The analysis is standard Mycroft-style: function strictness signatures
(which argument positions are strict) are computed by a descending
Kleene iteration starting from the optimistic all-strict assumption;
the result is safe for the transformation because we only *use* "is
strict" verdicts after the iteration stabilises.

Soundness against the denotational semantics — "if the analysis says
strict then ``[e][⊥/x] ⊑ Bad s`` for every instantiation" — is property
tested in ``tests/analysis/test_strictness.py``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.lang.ast import (
    App,
    Case,
    Con,
    Expr,
    Fix,
    Lam,
    Let,
    Lit,
    PrimOp,
    Program,
    PVar,
    Raise,
    Var,
    pattern_vars,
    unfold_app,
    unfold_lam,
)
from repro.lang.ops import PRIM_TABLE

# A strictness signature: for each parameter position, True iff the
# function is strict in it.
Signature = Tuple[bool, ...]
StrictnessEnv = Dict[str, Signature]


def strict_in(
    expr: Expr, var: str, env: Optional[StrictnessEnv] = None
) -> bool:
    """Is ``expr`` strict in ``var``?

    ``env`` supplies strictness signatures for known (top-level or
    let-bound) functions; unknown functions are assumed lazy in all
    arguments (safe: we may miss strictness, never invent it).
    """
    return _strict(expr, var, env or {}, frozenset())


def _strict(
    expr: Expr,
    var: str,
    env: StrictnessEnv,
    shadowed: FrozenSet[str],
) -> bool:
    if isinstance(expr, Var):
        return expr.name == var and var not in shadowed
    if isinstance(expr, (Lit, Lam, Con)):
        # WHNF immediately: nothing is forced (constructors are
        # non-strict, Section 4.2).
        return False
    if isinstance(expr, App):
        head, args = unfold_app(expr)
        if isinstance(head, Var) and head.name not in shadowed:
            signature = env.get(head.name)
            if signature is not None and len(args) == len(signature):
                if _strict(head, var, env, shadowed):
                    return True
                return any(
                    is_strict and _strict(arg, var, env, shadowed)
                    for is_strict, arg in zip(signature, args)
                )
        # Unknown function: evaluating the application surely forces
        # the function part; the argument we cannot know about.
        return _strict(expr.fn, var, env, shadowed)
    if isinstance(expr, Case):
        if _strict(expr.scrutinee, var, env, shadowed):
            return True
        if not expr.alts:
            return False
        # Strict if *every* branch is strict (whichever is taken
        # forces the variable).
        return all(
            _strict(
                alt.body,
                var,
                env,
                shadowed | frozenset(pattern_vars(alt.pattern)),
            )
            for alt in expr.alts
        )
    if isinstance(expr, Raise):
        return _strict(expr.exc, var, env, shadowed)
    if isinstance(expr, PrimOp):
        info = PRIM_TABLE.get(expr.op)
        if info is None:
            return False
        if expr.op == "seq":
            # seq forces both: its first argument explicitly, and its
            # WHNF is its second argument's WHNF.
            return any(
                _strict(a, var, env, shadowed) for a in expr.args
            )
        return any(
            _strict(expr.args[i], var, env, shadowed)
            for i in info.strict_in
            if i < len(expr.args)
        )
    if isinstance(expr, Fix):
        return _strict(expr.fn, var, env, shadowed)
    if isinstance(expr, Let):
        bound = frozenset(name for name, _ in expr.binds)
        inner_shadowed = shadowed | bound
        if _strict(expr.body, var, env, inner_shadowed):
            return True
        # A let-bound variable forced strictly by the body can make the
        # body strict in `var` transitively; approximate one level: if
        # the body is strict in a bind whose rhs is strict in var.
        for name, rhs in expr.binds:
            if _strict(expr.body, name, env, shadowed - {name}):
                if _strict(rhs, var, env, inner_shadowed):
                    return True
        return False
    raise TypeError(f"strict_in: unknown expression {expr!r}")


def function_signature(
    expr: Expr, env: StrictnessEnv
) -> Optional[Signature]:
    """The strictness signature of a (syntactic) function definition."""
    params, body = unfold_lam(expr)
    if not params:
        return None
    return tuple(
        _strict(body, p, env, frozenset(params[i + 1 :]))
        for i, p in enumerate(params)
    )


def analyse_program(
    program: Program, max_rounds: int = 20
) -> StrictnessEnv:
    """Compute strictness signatures for all top-level functions.

    Descending Kleene iteration: start all-strict (the optimistic
    assumption for recursive calls), recompute until stable.  Monotone
    in the finite signature lattice, so it terminates; the round bound
    is belt-and-braces.
    """
    env: StrictnessEnv = {}
    shapes: Dict[str, int] = {}
    for name, rhs in program.binds:
        params, _body = unfold_lam(rhs)
        if params:
            shapes[name] = len(params)
            env[name] = tuple(True for _ in params)
    for _round in range(max_rounds):
        changed = False
        for name, rhs in program.binds:
            if name not in shapes:
                continue
            signature = function_signature(rhs, env)
            assert signature is not None
            if signature != env[name]:
                env[name] = signature
                changed = True
        if not changed:
            break
    return env
