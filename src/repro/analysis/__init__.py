"""Static analyses.

* :mod:`repro.analysis.strictness` — two-point abstract interpretation
  answering "does forcing this expression necessarily force that
  variable?"  It drives the call-by-need -> call-by-value
  transformation the paper calls "crucial" (Section 3.4).
* :mod:`repro.analysis.effects` — a conservative exception-freedom
  (effect) analysis: the approach ML/FL compilers must use to license
  reordering under a fixed-evaluation-order semantics (Sections 3.4
  and 6).  Its pessimism is the paper's argument, quantified by E6.
* :mod:`repro.analysis.occurrence` — occurrence counting shared by the
  inliner and the benchmarks.
"""

from repro.analysis.effects import (
    EffectEnv,
    cannot_raise,
    transformable_sites,
)
from repro.analysis.strictness import (
    StrictnessEnv,
    analyse_program,
    strict_in,
)

__all__ = [
    "EffectEnv",
    "StrictnessEnv",
    "analyse_program",
    "cannot_raise",
    "strict_in",
    "transformable_sites",
]
