"""The ``repro explain`` engine: per-member provenance of a program's
exception set.

The paper's semantics says an exceptional program denotes a *set* of
exceptions, and which member you see is a scheduling accident (§3,
§4.4).  ``repro explain`` makes that concrete for one program:

* the **denotational layer** computes the full set, with an
  :class:`~repro.obs.provenance.ExcOrigins` table recording the source
  span that introduced each member;
* the **operational layer** then samples several evaluation strategies
  (left-to-right, right-to-left, and a handful of shuffles) with
  provenance recording on, so every member some schedule actually
  surfaces carries its raise site, abbreviated force chain, and
  scheduling indices.

Members the sampled strategies never surfaced are still listed — with
their denotational introduction site — so the output covers the whole
set, not just the schedules we happened to run.

Spans carry their compilation unit (:class:`repro.lang.ast.Span.unit`):
an exception introduced inside prelude code (e.g. ``error``'s ``raise``
in the prelude source) prints as ``prelude:23:13-20``, and the source
registry (:mod:`repro.lang.units`) lets the report quote the prelude
line itself alongside the user spans that demanded it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.excset import Exc
from repro.obs.provenance import ExcOrigins, RaiseProvenance, format_provenance


@dataclass
class MemberReport:
    """One member of the exception set, with everything known about it."""

    exc: Exc
    provenance: Optional[RaiseProvenance] = None  # operational record
    observed_by: List[str] = field(default_factory=list)
    origin: Optional[object] = None  # denote-side introduction span

    def lines(self) -> List[str]:
        if self.observed_by:
            body = format_provenance(self.exc, self.provenance)
            body[0] += f"   [observed: {', '.join(self.observed_by)}]"
            return body
        site = str(self.origin) if self.origin is not None else "<unknown>"
        return [
            f"{self.exc} introduced at {site}   "
            "[not surfaced by the sampled strategies]"
        ]


@dataclass
class ExplainReport:
    source: str
    denoted: Optional[str] = None  # rendered denotation, if computed
    members: List[MemberReport] = field(default_factory=list)
    normal: Optional[str] = None  # rendered value when nothing raises
    diverged: bool = False
    strategies: List[str] = field(default_factory=list)

    def render(self) -> str:
        head = self.source.strip().splitlines()
        label = head[0] if head else self.source
        if len(label) > 60:
            label = label[:57] + "..."
        lines = [f"explain  {label}"]
        if self.denoted is not None:
            lines.append(f"denotes  {self.denoted}")
        lines.append(
            f"sampled  {len(self.strategies)} strategies: "
            + ", ".join(self.strategies)
        )
        if self.normal is not None:
            lines.append("")
            lines.append(
                f"no exception observed; value: {self.normal}"
            )
        if self.diverged:
            lines.append("")
            lines.append(
                "some sampled runs diverged (fuel exhausted) — "
                "NonTermination is in the denoted set"
            )
        if self.members:
            lines.append("")
            lines.append("members:")
            for member in self.members:
                body = member.lines()
                lines.append("  " + body[0])
                lines.extend("  " + entry for entry in body[1:])
        return "\n".join(lines)


def _sample_strategies(shuffle_seeds: int):
    from repro.machine.strategy import LeftToRight, RightToLeft, Shuffled

    pairs = [
        ("left-to-right", lambda: LeftToRight()),
        ("right-to-left", lambda: RightToLeft()),
    ]
    for seed in range(max(0, shuffle_seeds)):
        pairs.append((f"shuffled:{seed}", lambda s=seed: Shuffled(s)))
    return pairs


def explain_source(
    source: str,
    entry: str = "main",
    fuel: int = 2_000_000,
    denote_fuel: int = 200_000,
    shuffle_seeds: int = 4,
    backend: str = "ast",
) -> ExplainReport:
    """Explain ``source`` (an expression, or a module with ``entry``)."""
    from repro.api import compile_expr, compile_program
    from repro.core.denote import DenoteContext, denote, denote_program
    from repro.core.domains import Bad
    from repro.machine.eval import Machine
    from repro.machine.observe import (
        Diverged,
        Exceptional,
        Normal,
        observe,
        observe_program,
        show_value,
    )
    from repro.prelude.loader import denote_env, machine_env

    program = None
    expr = None
    try:
        expr = compile_expr(source)
    except Exception:
        program = compile_program(source)

    report = ExplainReport(source=source)

    # -- denotational pass: the full set, with introduction origins.
    origins = ExcOrigins()
    ctx = DenoteContext(fuel=denote_fuel, provenance=origins)
    denoted_members: Tuple[Exc, ...] = ()
    try:
        if program is not None:
            value = denote_program(
                program, entry=entry, base=denote_env(ctx), ctx=ctx
            )
        else:
            value = denote(expr, denote_env(ctx), ctx)
        report.denoted = str(value)
        if isinstance(value, Bad):
            denoted_members = tuple(sorted(value.excs.finite_members()))
            if not value.excs.is_finite():
                report.denoted += "  (infinite set; explicit members shown)"
    except Exception as err:  # denote is best-effort context here
        report.denoted = f"<denotation unavailable: {err}>"

    # -- operational pass: sample schedules with provenance recording.
    by_member: Dict[Exc, MemberReport] = {}
    order: List[Exc] = []
    for label, make_strategy in _sample_strategies(shuffle_seeds):
        report.strategies.append(label)
        machine = Machine(
            strategy=make_strategy(), fuel=fuel, backend=backend
        )
        if program is not None:
            outcome = observe_program(
                program,
                entry=entry,
                machine=machine,
                base=machine_env(machine),
                provenance=True,
            )
        else:
            outcome = observe(
                expr,
                env=machine_env(machine),
                machine=machine,
                provenance=True,
            )
        if isinstance(outcome, Exceptional):
            member = by_member.get(outcome.exc)
            if member is None:
                member = MemberReport(exc=outcome.exc)
                by_member[outcome.exc] = member
                order.append(outcome.exc)
            member.observed_by.append(label)
            if member.provenance is None:
                member.provenance = outcome.provenance
        elif isinstance(outcome, Normal):
            if report.normal is None:
                report.normal = show_value(outcome.value, machine)
        elif isinstance(outcome, Diverged):
            report.diverged = True

    # -- merge: observed members first, then the rest of the denoted set.
    for exc in denoted_members:
        if exc not in by_member:
            by_member[exc] = MemberReport(exc=exc)
            order.append(exc)
    for exc in order:
        member = by_member[exc]
        member.origin = origins.origin_of(exc)
        report.members.append(member)
    return report
