'''The prelude source, in the object language.

The data declarations mirror the paper: ``ExVal`` is the discriminated
union returned by ``getException`` (Section 3.1) and ``Exception`` is
the Prelude data type of Section 3.1 extended with ``NonTermination``
(Section 4.1) and the asynchronous constructors (Section 5.1).

``error`` is *defined* via ``raise`` exactly as the paper does::

    error :: String -> a
    error str = raise (UserError str)
'''

PRELUDE_SOURCE = """
data Bool = True | False
data Unit = Unit
data List a = Nil | Cons a (List a)
data Maybe a = Nothing | Just a
data Tuple2 a b = Tuple2 a b
data Tuple3 a b c = Tuple3 a b c
data Tuple4 a b c d = Tuple4 a b c d
data Exception = DivideByZero
               | Overflow
               | UserError String
               | PatternMatchFail
               | NonTermination
               | ControlC
               | Timeout
               | StackOverflow
               | HeapOverflow
data ExVal a = OK a | Bad Exception
data Ordering = LT | EQ | GT

-- The paper's error function (Section 3.1).
error :: String -> a
error str = raise (UserError str)

otherwise :: Bool
otherwise = True

id :: a -> a
id x = x

const :: a -> b -> a
const x y = x

compose :: (b -> c) -> (a -> b) -> a -> c
compose f g x = f (g x)

apply :: (a -> b) -> a -> b
apply f x = f x

flip :: (a -> b -> c) -> b -> a -> c
flip f x y = f y x

not :: Bool -> Bool
not True = False
not False = True

and :: Bool -> Bool -> Bool
and True y = y
and False y = False

or :: Bool -> Bool -> Bool
or True y = True
or False y = y

fst :: (a, b) -> a
fst (Tuple2 x y) = x

snd :: (a, b) -> b
snd (Tuple2 x y) = y

maybe :: b -> (a -> b) -> Maybe a -> b
maybe d f Nothing = d
maybe d f (Just x) = f x

fromMaybe :: a -> Maybe a -> a
fromMaybe d Nothing = d
fromMaybe d (Just x) = x

head :: [a] -> a
head (x:xs) = x
head Nil = error "head: empty list"

tail :: [a] -> [a]
tail (x:xs) = xs
tail Nil = error "tail: empty list"

null :: [a] -> Bool
null Nil = True
null (x:xs) = False

length :: [a] -> Int
length Nil = 0
length (x:xs) = 1 + length xs

append :: [a] -> [a] -> [a]
append Nil ys = ys
append (x:xs) ys = x : append xs ys

map :: (a -> b) -> [a] -> [b]
map f Nil = Nil
map f (x:xs) = f x : map f xs

filter :: (a -> Bool) -> [a] -> [a]
filter p Nil = Nil
filter p (x:xs) = if p x then x : filter p xs else filter p xs

foldr :: (a -> b -> b) -> b -> [a] -> b
foldr f z Nil = z
foldr f z (x:xs) = f x (foldr f z xs)

foldl :: (b -> a -> b) -> b -> [a] -> b
foldl f z Nil = z
foldl f z (x:xs) = foldl f (f z x) xs

-- The paper's running example function (Section 3.2):
-- it can return an exception value directly, a list with an
-- exceptional tail, or a defined spine with exceptional elements.
zipWith :: (a -> b -> c) -> [a] -> [b] -> [c]
zipWith f Nil Nil = Nil
zipWith f (x:xs) (y:ys) = f x y : zipWith f xs ys
zipWith f xs ys = error "Unequal lists"

zip :: [a] -> [b] -> [(a, b)]
zip xs ys = zipWith (\\x y -> Tuple2 x y) xs ys

take :: Int -> [a] -> [a]
take n xs = if n <= 0 then Nil
            else case xs of
                   Nil -> Nil
                   (y:ys) -> y : take (n - 1) ys

drop :: Int -> [a] -> [a]
drop n xs = if n <= 0 then xs
            else case xs of
                   Nil -> Nil
                   (y:ys) -> drop (n - 1) ys

replicate :: Int -> a -> [a]
replicate n x = if n <= 0 then Nil else x : replicate (n - 1) x

reverse :: [a] -> [a]
reverse xs = revOnto xs Nil

revOnto :: [a] -> [a] -> [a]
revOnto Nil acc = acc
revOnto (x:xs) acc = revOnto xs (x : acc)

sum :: [Int] -> Int
sum Nil = 0
sum (x:xs) = x + sum xs

product :: [Int] -> Int
product Nil = 1
product (x:xs) = x * product xs

maximum :: [Int] -> Int
maximum (x:Nil) = x
maximum (x:xs) = max x (maximum xs)
maximum Nil = error "maximum: empty list"

minimum :: [Int] -> Int
minimum (x:Nil) = x
minimum (x:xs) = min x (minimum xs)
minimum Nil = error "minimum: empty list"

max :: Int -> Int -> Int
max x y = if x >= y then x else y

min :: Int -> Int -> Int
min x y = if x <= y then x else y

abs :: Int -> Int
abs x = if x < 0 then negate x else x

elem :: Int -> [Int] -> Bool
elem x Nil = False
elem x (y:ys) = if x == y then True else elem x ys

-- The "alternative return" idiom the paper discusses (Section 2):
-- looking up a key in a finite map, explicitly encoded with Maybe.
lookup :: Int -> [(Int, b)] -> Maybe b
lookup k Nil = Nothing
lookup k (Tuple2 k2 v : rest) = if k == k2 then Just v else lookup k rest

enumFromTo :: Int -> Int -> [Int]
enumFromTo lo hi = if lo > hi then Nil else lo : enumFromTo (lo + 1) hi

concat :: [[a]] -> [a]
concat Nil = Nil
concat (xs:xss) = append xs (concat xss)

concatMap :: (a -> [b]) -> [a] -> [b]
concatMap f xs = concat (map f xs)

iterate :: (a -> a) -> a -> [a]
iterate f x = x : iterate f (f x)

all :: (a -> Bool) -> [a] -> Bool
all p Nil = True
all p (x:xs) = if p x then all p xs else False

any :: (a -> Bool) -> [a] -> Bool
any p Nil = False
any p (x:xs) = if p x then True else any p xs

-- Force the spine and every element of a list (Section 3.2: "to be
-- sure that a data structure contains no exceptional values one must
-- force evaluation of all the elements").
forceList :: [Int] -> [Int]
forceList Nil = Nil
forceList (x:xs) = seq x (x : forceList xs)

forceSpine :: [a] -> [a]
forceSpine Nil = Nil
forceSpine (x:xs) = x : forceSpine xs

takeWhile :: (a -> Bool) -> [a] -> [a]
takeWhile p Nil = Nil
takeWhile p (x:xs) = if p x then x : takeWhile p xs else Nil

dropWhile :: (a -> Bool) -> [a] -> [a]
dropWhile p Nil = Nil
dropWhile p (x:xs) = if p x then dropWhile p xs else x : xs

span :: (a -> Bool) -> [a] -> ([a], [a])
span p xs = Tuple2 (takeWhile p xs) (dropWhile p xs)

splitAt :: Int -> [a] -> ([a], [a])
splitAt n xs = Tuple2 (take n xs) (drop n xs)

last :: [a] -> a
last (x:Nil) = x
last (x:xs) = last xs
last Nil = error "last: empty list"

init :: [a] -> [a]
init (x:Nil) = Nil
init (x:xs) = x : init xs
init Nil = error "init: empty list"

intersperse :: a -> [a] -> [a]
intersperse sep Nil = Nil
intersperse sep (x:Nil) = x : Nil
intersperse sep (x:xs) = x : sep : intersperse sep xs

zipWith3 :: (a -> b -> c -> d) -> [a] -> [b] -> [c] -> [d]
zipWith3 f Nil Nil Nil = Nil
zipWith3 f (x:xs) (y:ys) (z:zs) = f x y z : zipWith3 f xs ys zs
zipWith3 f xs ys zs = error "Unequal lists"

unzip :: [(a, b)] -> ([a], [b])
unzip xs = Tuple2 (map fst xs) (map snd xs)

nub :: [Int] -> [Int]
nub Nil = Nil
nub (x:xs) = x : nub (filter (\\y -> y /= x) xs)

gcdI :: Int -> Int -> Int
gcdI a b = if b == 0 then abs a else gcdI b (a `mod` b)

even :: Int -> Bool
even n = n `mod` 2 == 0

odd :: Int -> Bool
odd n = n `mod` 2 /= 0

signum :: Int -> Int
signum n | n < 0 = negate 1
         | n == 0 = 0
         | otherwise = 1

showBool :: Bool -> String
showBool True = "True"
showBool False = "False"

showIntList :: [Int] -> String
showIntList xs = strAppend "[" (strAppend (showElems xs) "]")

showElems :: [Int] -> String
showElems Nil = ""
showElems (x:Nil) = showInt x
showElems (x:xs) = strAppend (showInt x)
                             (strAppend ", " (showElems xs))

-- Higher-order sorting: the Section 2 modularity example.  The
-- comparison function may raise; nothing here needs to know.
insertBy :: (a -> a -> Bool) -> a -> [a] -> [a]
insertBy le x Nil = x : Nil
insertBy le x (y:ys) = if le x y then x : y : ys
                       else y : insertBy le x ys

sortBy :: (a -> a -> Bool) -> [a] -> [a]
sortBy le Nil = Nil
sortBy le (x:xs) = insertBy le x (sortBy le xs)

sort :: [Int] -> [Int]
sort xs = sortBy (\\a b -> a <= b) xs

-- IO helpers -----------------------------------------------------------

thenIO :: IO a -> IO b -> IO b
thenIO m k = bindIO m (\\x -> k)

mapM_ :: (a -> IO Unit) -> [a] -> IO Unit
mapM_ f Nil = returnIO Unit
mapM_ f (x:xs) = thenIO (f x) (mapM_ f xs)

putLine :: String -> IO Unit
putLine s = thenIO (putStr s) (putChar '\\n')

-- Exception-handling combinators built on getException --------------

-- tryEval forces a value and reifies the outcome (Section 3.1's
-- example usage of getException).
tryEval :: a -> IO (ExVal a)
tryEval x = getException x

-- catch with a handler: the disaster-recovery pattern of Section 2.
catchEval :: a -> (Exception -> a) -> IO a
catchEval x handler =
  bindIO (getException x) (\\r ->
    case r of
      OK v -> returnIO v
      Bad e -> returnIO (handler e))

-- showException renders an Exception for output.
showException :: Exception -> String
showException DivideByZero = "DivideByZero"
showException Overflow = "Overflow"
showException (UserError msg) = strAppend "UserError " msg
showException PatternMatchFail = "PatternMatchFail"
showException NonTermination = "NonTermination"
showException ControlC = "ControlC"
showException Timeout = "Timeout"
showException StackOverflow = "StackOverflow"
showException HeapOverflow = "HeapOverflow"
"""
