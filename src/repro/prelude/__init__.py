"""The prelude: standard data types and functions, written in the
object language and shared by both evaluators."""

from repro.prelude.loader import (
    con_arities,
    denote_env,
    machine_env,
    prelude_program,
)
from repro.prelude.source import PRELUDE_SOURCE

__all__ = [
    "PRELUDE_SOURCE",
    "con_arities",
    "denote_env",
    "machine_env",
    "prelude_program",
]
