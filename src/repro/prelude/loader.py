"""Loading the prelude into both evaluators.

The parsed and pattern-flattened prelude program is cached at module
level (parsing is pure).  Environments are built per evaluation context
— denotational thunks capture a :class:`DenoteContext` (fuel), machine
cells capture a :class:`Machine` — so each caller gets fresh ones.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional

from repro.core.denote import DenoteContext
from repro.core.denote import program_env as _denote_program_env
from repro.lang.ast import Program
from repro.lang.match import flatten_program
from repro.lang.parser import BUILTIN_CON_ARITY, parse_program
from repro.lang.units import register_unit
from repro.machine.eval import Machine
from repro.machine.eval import program_env as _machine_program_env
from repro.prelude.source import PRELUDE_SOURCE

#: The compilation-unit name stamped into prelude spans, so a
#: prelude-introduced raise explains itself as ``prelude:23:13``
#: rather than a bare unit-local region (repro.lang.units).
PRELUDE_UNIT = "prelude"

register_unit(PRELUDE_UNIT, PRELUDE_SOURCE)


@lru_cache(maxsize=None)
def prelude_program() -> Program:
    """The parsed, flattened prelude (cached)."""
    return flatten_program(parse_program(PRELUDE_SOURCE, unit=PRELUDE_UNIT))


@lru_cache(maxsize=None)
def con_arities() -> Dict[str, int]:
    """Constructor arities visible to programs using the prelude."""
    arities = dict(BUILTIN_CON_ARITY)
    for decl in prelude_program().data_decls:
        for cname, cargs in decl.constructors:
            arities[cname] = len(cargs)
    return arities


def denote_env(ctx: DenoteContext):
    """A fresh denotational environment containing the prelude."""
    return _denote_program_env(prelude_program(), ctx)


def machine_env(machine: Machine):
    """A fresh machine environment containing the prelude."""
    return _machine_program_env(prelude_program(), machine)
