"""The evaluation service: per-request isolation, structured outcomes.

Every request gets a **fresh machine** (no shared heap *writes*, no
shared counters — isolation is the whole point of the paper's
per-evaluation semantics), a fresh
:class:`~repro.serve.governor.ResourceGovernor`, and optionally a
fresh seeded fault plan (chaos mode).

Two request paths share one observable contract (docs/SERVING.md):

* **warm** (default): the machine is *forked* from a
  :class:`~repro.machine.snapshot.PreludeSnapshot` — a fully memoised,
  therefore immutable, prelude heap built once at service start — and
  the front end (parse, flatten, typecheck, compile) is served from a
  content-addressed :class:`~repro.serve.cache.ProgramCache`, so a
  repeat program goes straight to evaluation;
* **cold** (``warm=False``): PR 5's original construction — prelude
  cells rebuilt and the source re-parsed per request — kept as the
  benchmark baseline (E16) and escape hatch.

The outcome is shaped into one of the structured statuses below
(:mod:`repro.serve.schema` is the single source of truth for their
fields):

``value``
    Evaluation reached WHNF (for ``IO`` expressions: the action was
    performed; ``stdout`` rides along).
``exceptional``
    The machine observed a member of the denoted exception set — a
    *successful* evaluation in the resilience sense: deterministic,
    semantically meaningful, pointless to retry.
``resource-exhausted``
    A governor limit fired (Section 5.1 fictitious exceptions:
    ``Timeout`` for steps/deadline, ``HeapOverflow`` for the
    allocation cap) or fuel ran out.  Deadline trips are transient and
    retried under the backoff policy; step/allocation trips are
    deterministic and are not.
``rejected``
    The request never reached a machine: admission queue full, or the
    circuit breaker is open (fast rejection with Retry-After).

Concurrency is bounded twice: ``max_concurrency`` machines evaluate at
once, and at most ``queue_depth`` further requests wait; beyond that,
admission fails instantly — a service that queues unboundedly is a
service that falls over late instead of degrading early.

Metrics reuse the PR-1 observability layer verbatim: each request's
machine carries a :class:`~repro.obs.sinks.CountingSink`, and the
per-request counts are merged into service totals for ``/healthz``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.machine.heap import AsyncInterrupt, Cell, MachineDiverged, ObjRaise
from repro.machine.observe import (
    Diverged,
    Exceptional,
    Normal,
    show_value,
)
from repro.machine.snapshot import (
    PreludeSnapshot,
    shared_snapshot,
    warm_machine,
)
from repro.machine.slices import SliceRunner
from repro.machine.values import VIO
from repro.obs.sinks import CountingSink, JsonlSink
from repro.obs.telemetry import (
    LATENCY_BUCKETS,
    STEP_BUCKETS,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.tracing import (
    NULL_TRACE_BUILDER,
    TraceBuilder,
    TraceRecorder,
    format_trace_id,
)
from repro.serve.cache import CachedProgram, ProgramCache
from repro.serve.governor import GovernorLimits, ResourceGovernor
from repro.serve.retry import CircuitBreaker, RetryPolicy
from repro.serve.scheduler import (
    PRIORITIES,
    CooperativeScheduler,
    SchedulerHooks,
)
from repro.serve.schema import METRIC_FAMILIES

#: Circuit-breaker states as the ``repro_breaker_state`` gauge value.
_BREAKER_STATES = {"closed": 0, "half-open": 1, "open": 2}


@dataclass(frozen=True)
class ServiceConfig:
    """Service-wide knobs; per-request limits live in the governor."""

    backend: str = "ast"
    max_steps: Optional[int] = 2_000_000
    max_allocations: Optional[int] = 1_000_000
    deadline_seconds: Optional[float] = 5.0
    max_concurrency: int = 4
    queue_depth: int = 16
    retries: int = 0
    retry_base_delay: float = 0.02
    retry_seed: int = 0
    breaker_threshold: int = 5
    breaker_reset_seconds: float = 1.0
    fault_seed: Optional[int] = None
    fault_horizon: int = 2_000
    collect_events: bool = True
    warm: bool = True
    cache_capacity: int = 256
    max_batch: int = 32
    telemetry: bool = True
    trace_ring: int = 256
    trace_log: Optional[str] = None
    # Cooperative multi-tenant scheduling (docs/SERVING.md).  In
    # "threads" mode every admitted request evaluates on its own
    # thread (the PR-5 model); "cooperative" runs them all on
    # ``workers`` threads in ``slice_steps``-sized fuel slices under
    # per-tenant deficit round-robin, so ``max_concurrency`` becomes
    # the *admitted in-flight* bound rather than a thread count.
    scheduler: str = "threads"
    workers: int = 2
    slice_steps: int = 25_000
    tenant_max_in_flight: Optional[int] = None
    tenant_step_quota: Optional[int] = None
    schedule_seed: int = 0
    #: Bounded metric cardinality: the first K distinct tenants get
    #: their own ``tenant`` label value, the rest share ``other``.
    tenant_label_slots: int = 8

    def backstop_fuel(self) -> int:
        """The machine's own fuel — the hard stop behind the governor
        (a catch handler runs past a one-shot trip, but not forever)."""
        if self.max_steps is None:
            return 8_000_000
        return max(self.max_steps * 4, self.max_steps + 1_000)


@dataclass
class _Attempt:
    """One evaluation attempt, before response shaping."""

    kind: str  # value | exceptional | resource-exhausted
    value: Optional[str] = None
    stdout: Optional[str] = None
    exc: Optional[str] = None
    synchronous: Optional[bool] = None
    reason: Optional[str] = None
    stats: Dict[str, int] = field(default_factory=dict)
    events: Dict[str, int] = field(default_factory=dict)
    trip: Optional[dict] = None
    faults_injected: List[dict] = field(default_factory=list)


class EvalService:
    """The thread-safe core behind ``repro serve`` (and the tests,
    which drive it without HTTP).  ``clock`` and ``sleep`` are
    injectable so resilience behaviour is testable without waiting.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = config or ServiceConfig()
        if self.config.scheduler not in ("threads", "cooperative"):
            raise ValueError(
                f"unknown scheduler {self.config.scheduler!r}; "
                "expected 'threads' or 'cooperative'"
            )
        self._clock = clock
        self._sleep = sleep
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            reset_seconds=self.config.breaker_reset_seconds,
            clock=clock,
        )
        self._running = threading.Semaphore(self.config.max_concurrency)
        self._admission = threading.Semaphore(
            self.config.max_concurrency + self.config.queue_depth
        )
        self._lock = threading.Lock()
        self._request_counter = 0
        self._id_seq = 0
        self._in_flight = 0
        self._tenant_in_flight: Dict[str, int] = {}
        self._tenant_labels: set = set()
        self.requests_by_status: Dict[str, int] = {}
        self.event_totals: Dict[str, int] = {}
        self.trip_totals: Dict[str, int] = {}
        self.faults_injected = 0
        self.retries_performed = 0
        self.batches_total = 0
        self.batch_programs_total = 0
        # Warm path: one immutable prelude snapshot (shared process-
        # wide per backend — it is read-only by construction) plus a
        # per-service content-addressed artifact cache.
        self.snapshot: Optional[PreludeSnapshot] = None
        self.cache: Optional[ProgramCache] = None
        if self.config.warm:
            self.snapshot = shared_snapshot(backend=self.config.backend)
            self.cache = ProgramCache(
                backend=self.config.backend,
                strategy_key=self.snapshot.strategy_key(),
                capacity=self.config.cache_capacity,
            )
        self._started_at = clock()
        # Telemetry: registry + trace recorder, both pay-as-you-go —
        # with telemetry off the registry is the null twin and the
        # trace builders are shared no-ops (ids are still minted, so
        # clients always get a correlation handle).
        self.tracer: Optional[TraceRecorder] = None
        if self.config.telemetry:
            self.registry = MetricsRegistry()
            trace_sink = None
            if self.config.trace_log:
                # Line-buffered so a killed daemon still leaves a
                # complete JSONL trail (the CI artifact path).
                trace_sink = JsonlSink(
                    open(
                        self.config.trace_log,
                        "w",
                        encoding="utf-8",
                        buffering=1,
                    )
                )
            self.tracer = TraceRecorder(
                capacity=self.config.trace_ring, sink=trace_sink
            )
        else:
            self.registry = NullRegistry()
        self.scheduler: Optional[CooperativeScheduler] = None
        self._build_metrics()
        if self.config.scheduler == "cooperative":
            self.scheduler = CooperativeScheduler(
                workers=self.config.workers,
                slice_steps=self.config.slice_steps,
                tenant_step_quota=self.config.tenant_step_quota,
                schedule_seed=self.config.schedule_seed,
                clock=clock,
                hooks=SchedulerHooks(
                    slice_steps=self._m["repro_slice_steps"],
                    first_slice=self._m["repro_first_slice_seconds"],
                ),
            )

    # -- telemetry ------------------------------------------------------

    def _build_metrics(self) -> None:
        """Instantiate every family in
        :data:`repro.serve.schema.METRIC_FAMILIES` — the schema module
        is the single source of truth, the telemetry test gates the
        rendered exposition against it.  Live state (uptime, in-flight,
        breaker, cache, trace ring) is exposed through read-through
        callbacks so nothing is accounted twice."""
        callbacks = {
            "repro_uptime_seconds": lambda: self._clock()
            - self._started_at,
            "repro_in_flight": lambda: self._in_flight,
            "repro_breaker_state": lambda: _BREAKER_STATES.get(
                self.breaker.as_dict()["state"], -1
            ),
            "repro_cache_hits_total": lambda: (
                self.cache.stats()["hits"] if self.cache else 0
            ),
            "repro_cache_misses_total": lambda: (
                self.cache.stats()["misses"] if self.cache else 0
            ),
            "repro_traces_total": lambda: (
                self.tracer.recorded if self.tracer else 0
            ),
            "repro_run_queue_depth": lambda: (
                self.scheduler.run_queue_depth() if self.scheduler else 0
            ),
            "repro_active_tenants": lambda: (
                self.scheduler.active_tenants() if self.scheduler else 0
            ),
            "repro_sched_slices_total": lambda: (
                self.scheduler.slices_total if self.scheduler else 0
            ),
            "repro_sched_preemptions_total": lambda: (
                self.scheduler.preemptions_total if self.scheduler else 0
            ),
            "repro_starvation_seconds": lambda: (
                self.scheduler.starvation_seconds
                if self.scheduler
                else 0.0
            ),
        }
        buckets = {"latency": LATENCY_BUCKETS, "steps": STEP_BUCKETS}
        instruments = {}
        for spec in METRIC_FAMILIES:
            if spec.kind == "histogram":
                instruments[spec.name] = self.registry.histogram(
                    spec.name,
                    spec.help,
                    buckets[spec.buckets],
                    spec.labels,
                )
            elif spec.kind == "gauge":
                instruments[spec.name] = self.registry.gauge(
                    spec.name,
                    spec.help,
                    spec.labels,
                    callback=callbacks.get(spec.name),
                )
            else:
                instruments[spec.name] = self.registry.counter(
                    spec.name,
                    spec.help,
                    spec.labels,
                    callback=callbacks.get(spec.name),
                )
        self._m = instruments

    def _next_ids(self) -> Tuple[int, str]:
        """Mint ``(request_id, trace_id)``.  A plain monotonic
        sequence — deterministic per service instance, so warm and
        cold twins fed the same request sequence answer with
        byte-identical bodies, ids included."""
        with self._lock:
            self._id_seq += 1
            seq = self._id_seq
        return seq, format_trace_id(seq)

    def _trace_builder(
        self, ids: Tuple[int, str], parent: Optional[str] = None
    ):
        if self.tracer is None:
            return NULL_TRACE_BUILDER
        request_id, trace_id = ids
        return TraceBuilder(
            trace_id, request_id, self._clock, parent=parent
        )

    def _finish_trace(self, builder) -> None:
        trace = builder.finish()
        if trace is None or self.tracer is None:
            return
        stage_seconds = self._m["repro_stage_seconds"]
        for child in trace.root.children:
            stage_seconds.observe(child.duration, stage=child.name)
        self.tracer.record(trace)

    def get_trace(self, trace_id: str):
        """Resolve an echoed ``trace_id`` to its recorded span tree
        (None once it ages out of the ring or with telemetry off)."""
        if self.tracer is None:
            return None
        return self.tracer.get(trace_id)

    def metrics_text(self) -> str:
        """The ``GET /metrics`` payload: Prometheus text exposition."""
        return self.registry.render()

    def close(self) -> None:
        """Stop the scheduler (cooperative mode) and flush the opt-in
        trace log (idempotent)."""
        if self.scheduler is not None:
            self.scheduler.close()
        if self.tracer is not None:
            self.tracer.close()

    # -- request handling -----------------------------------------------

    def handle(
        self, payload: Any
    ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        """Serve one request.  Returns ``(http_status, body,
        retry_after)`` — the HTTP front end turns ``retry_after`` into
        a ``Retry-After`` header; library callers read it from the body.

        Two payload shapes: ``{"expr": "<source>"}`` evaluates one
        program; ``{"programs": [...]}`` evaluates a batch under a
        single admission ticket (items are source strings or
        ``{"expr": ..., "stdin": ..., "typecheck": ...}`` objects).
        """
        if isinstance(payload, dict) and "programs" in payload:
            return self._handle_batch(payload)
        ids = self._next_ids()
        builder = self._trace_builder(ids)
        try:
            if not isinstance(payload, dict) or not isinstance(
                payload.get("expr"), str
            ):
                return self._bad_request(
                    'body must be JSON {"expr": "<source>"} or '
                    '{"programs": [...]}',
                    ids,
                    builder,
                )
            identity_error = self._identity_error(payload)
            if identity_error is not None:
                return self._bad_request(identity_error, ids, builder)
            request = self._normalize(payload)
            tenant = request["tenant"]

            with builder.span("admission"):
                admitted, rejection = self._admit(ids, tenant)
            if not admitted:
                builder.annotate(rejected="queue-full")
                return rejection
            try:
                granted, rejection = self._tenant_admit(tenant, ids)
                if not granted:
                    builder.annotate(rejected="tenant-quota")
                    return rejection
                try:
                    with builder.span("breaker"):
                        allowed, retry_after = self.breaker.allow()
                    if not allowed:
                        builder.annotate(rejected="circuit-open")
                        body = {
                            "status": "rejected",
                            "reason": "circuit-open",
                            "retry_after": round(retry_after, 3),
                            "request_id": ids[0],
                            "trace_id": ids[1],
                        }
                        self._count_status("rejected", tenant)
                        return 503, body, retry_after
                    return self._serve_program(request, ids, builder)
                finally:
                    self._tenant_release(tenant)
            finally:
                self._admission.release()
        finally:
            self._finish_trace(builder)

    def _handle_batch(
        self, payload: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        """N programs, one admission ticket: the queue slot, the
        breaker consultation and (on the warm path) the snapshot/cache
        lookups are paid once per batch, while every program keeps its
        own machine, governor, fault plan and structured response."""
        ids = self._next_ids()
        builder = self._trace_builder(ids)
        try:
            programs = payload.get("programs")
            if not isinstance(programs, list) or not programs:
                return self._bad_request(
                    '"programs" must be a non-empty JSON array',
                    ids,
                    builder,
                )
            if len(programs) > self.config.max_batch:
                builder.annotate(error="batch-too-large")
                return (
                    400,
                    {
                        "status": "error",
                        "reason": "batch-too-large",
                        "message": f"batch of {len(programs)} exceeds "
                        f"max_batch={self.config.max_batch}",
                        "request_id": ids[0],
                        "trace_id": ids[1],
                    },
                    None,
                )
            identity_error = self._identity_error(payload)
            if identity_error is not None:
                return self._bad_request(identity_error, ids, builder)
            # The envelope's tenant/priority are the defaults every
            # item inherits (items may override).
            defaults = {
                key: payload[key]
                for key in ("tenant", "priority")
                if key in payload
            }
            requests = []
            for item in programs:
                if isinstance(item, str):
                    item = {"expr": item}
                if not isinstance(item, dict) or not isinstance(
                    item.get("expr"), str
                ):
                    return self._bad_request(
                        "batch items must be source strings or "
                        '{"expr": "<source>"} objects',
                        ids,
                        builder,
                    )
                item = {**defaults, **item}
                identity_error = self._identity_error(item)
                if identity_error is not None:
                    return self._bad_request(
                        identity_error, ids, builder
                    )
                requests.append(self._normalize(item))
            tenant = self._normalize(
                {"expr": "", **defaults}
            )["tenant"]

            with builder.span("admission"):
                admitted, rejection = self._admit(ids, tenant)
            if not admitted:
                builder.annotate(rejected="queue-full")
                return rejection
            try:
                granted, rejection = self._tenant_admit(tenant, ids)
                if not granted:
                    builder.annotate(rejected="tenant-quota")
                    return rejection
                try:
                    with builder.span("breaker"):
                        allowed, retry_after = self.breaker.allow()
                    if not allowed:
                        builder.annotate(rejected="circuit-open")
                        body = {
                            "status": "rejected",
                            "reason": "circuit-open",
                            "retry_after": round(retry_after, 3),
                            "request_id": ids[0],
                            "trace_id": ids[1],
                        }
                        self._count_status("rejected", tenant)
                        return 503, body, retry_after
                    results = []
                    child_traces = []
                    for request in requests:
                        child_ids = self._next_ids()
                        child_builder = self._trace_builder(
                            child_ids, parent=ids[1]
                        )
                        try:
                            results.append(
                                self._serve_program(
                                    request, child_ids, child_builder
                                )[1]
                            )
                        finally:
                            self._finish_trace(child_builder)
                        child_traces.append(child_ids[1])
                    builder.annotate(
                        programs=len(results), children=child_traces
                    )
                    with self._lock:
                        self.batches_total += 1
                        self.batch_programs_total += len(results)
                    self._m["repro_batches_total"].inc()
                    self._m["repro_batch_programs_total"].inc(
                        len(results)
                    )
                    body = {
                        "status": "batch",
                        "count": len(results),
                        "results": results,
                        "request_id": ids[0],
                        "trace_id": ids[1],
                    }
                    return 200, body, None
                finally:
                    self._tenant_release(tenant)
            finally:
                self._admission.release()
        finally:
            self._finish_trace(builder)

    @staticmethod
    def _identity_error(payload: Dict[str, Any]) -> Optional[str]:
        """Validate the scheduling identity riding on a request (or a
        batch envelope/item): ``tenant`` must be a non-empty string,
        ``priority`` one of the known classes.  None when fine."""
        tenant = payload.get("tenant", "anonymous")
        if not isinstance(tenant, str) or not tenant:
            return '"tenant" must be a non-empty string'
        priority = payload.get("priority", "normal")
        if priority not in PRIORITIES:
            return (
                f'"priority" must be one of '
                f'{sorted(PRIORITIES)}, not {priority!r}'
            )
        return None

    @staticmethod
    def _normalize(payload: Dict[str, Any]) -> Dict[str, Any]:
        stdin = payload.get("stdin", "")
        return {
            "expr": payload["expr"],
            "stdin": stdin if isinstance(stdin, str) else "",
            "typecheck": bool(payload.get("typecheck", False)),
            "tenant": payload.get("tenant", "anonymous"),
            "priority": payload.get("priority", "normal"),
        }

    def _admit(self, ids: Tuple[int, str], tenant: str = "anonymous"):
        if self._admission.acquire(blocking=False):
            return True, None
        retry_after = max(
            (self.config.deadline_seconds or 1.0) / 2, 0.05
        )
        body = {
            "status": "rejected",
            "reason": "queue-full",
            "retry_after": round(retry_after, 3),
            "request_id": ids[0],
            "trace_id": ids[1],
        }
        self._count_status("rejected", tenant)
        return False, (429, body, retry_after)

    def _tenant_admit(self, tenant: str, ids: Tuple[int, str]):
        """Per-tenant in-flight quota — the 429 a single flooding
        tenant gets while everyone else keeps being admitted.  A
        no-op (always granted) when ``tenant_max_in_flight`` is
        unset."""
        limit = self.config.tenant_max_in_flight
        if limit is None:
            return True, None
        with self._lock:
            current = self._tenant_in_flight.get(tenant, 0)
            if current < limit:
                self._tenant_in_flight[tenant] = current + 1
                return True, None
        retry_after = max(
            (self.config.deadline_seconds or 1.0) / 2, 0.05
        )
        body = {
            "status": "rejected",
            "reason": "tenant-quota",
            "retry_after": round(retry_after, 3),
            "request_id": ids[0],
            "trace_id": ids[1],
        }
        self._count_status("rejected", tenant)
        return False, (429, body, retry_after)

    def _tenant_release(self, tenant: str) -> None:
        if self.config.tenant_max_in_flight is None:
            return
        with self._lock:
            remaining = self._tenant_in_flight.get(tenant, 0) - 1
            if remaining <= 0:
                self._tenant_in_flight.pop(tenant, None)
            else:
                self._tenant_in_flight[tenant] = remaining

    def _tenant_label(self, tenant: str) -> str:
        """Bounded-cardinality ``tenant`` label: the first
        ``tenant_label_slots`` distinct tenants keep their own label
        value (an approximation of top-K that needs no decay), later
        ones share ``other``."""
        with self._lock:
            if tenant in self._tenant_labels:
                return tenant
            if len(self._tenant_labels) < self.config.tenant_label_slots:
                self._tenant_labels.add(tenant)
                return tenant
        return "other"

    def _bad_request(
        self,
        message: str,
        ids: Optional[Tuple[int, str]] = None,
        builder=None,
    ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        body: Dict[str, Any] = {
            "status": "error",
            "reason": "bad-request",
            "message": message,
        }
        if ids is not None:
            body["request_id"] = ids[0]
            body["trace_id"] = ids[1]
        if builder is not None:
            builder.annotate(error="bad-request")
        return 400, body, None

    def _serve_program(
        self,
        request: Dict[str, Any],
        ids: Tuple[int, str],
        builder,
    ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        """Front end, evaluation, shaping and accounting for one
        program — admission and breaker gating already done.  Exactly
        one ``repro_request_seconds`` observation per call, so the
        histogram count equals ``requests_total`` by construction."""
        started = self._clock()
        try:
            status, body, retry_after = self._serve_program_inner(
                request, builder
            )
        finally:
            self._m["repro_request_seconds"].observe(
                self._clock() - started
            )
        body["request_id"] = ids[0]
        body["trace_id"] = ids[1]
        return status, body, retry_after

    def _serve_program_inner(
        self, request: Dict[str, Any], builder
    ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        tenant = request.get("tenant", "anonymous")
        builder.annotate(
            tenant=tenant, priority=request.get("priority", "normal")
        )
        with self._lock:
            self._request_counter += 1
            seed_id = self._request_counter

        with builder.span("cache-lookup", warm=self.cache is not None):
            entry = self._front_end(request["expr"])
        if entry.error is not None:
            # A parse/flatten error is the *client's* failure, not the
            # pool's — it must not open the breaker.
            self.breaker.record_success()
            self._count_status("error", tenant)
            builder.annotate(error="parse-error")
            return (
                400,
                {
                    "status": "error",
                    "reason": "parse-error",
                    "message": entry.error,
                },
                None,
            )
        if request["typecheck"]:
            with builder.span("typecheck"):
                verdict, detail = entry.typecheck()
            if verdict != "ok":
                self.breaker.record_success()
                self._count_status("error", tenant)
                builder.annotate(error="type-error")
                return (
                    400,
                    {
                        "status": "error",
                        "reason": "type-error",
                        "message": detail,
                    },
                    None,
                )

        self._running.acquire()
        with self._lock:
            self._in_flight += 1
        try:
            attempt_result, attempts = self._with_retries(
                entry, request, seed_id, builder
            )
        finally:
            with self._lock:
                self._in_flight -= 1
            self._running.release()

        with builder.span("render", status=attempt_result.kind):
            body = self._shape(attempt_result, attempts)
            self._absorb(attempt_result, attempts, tenant)
        if attempt_result.kind == "resource-exhausted":
            self.breaker.record_failure()
        else:
            self.breaker.record_success()
        return 200, body, body.get("retry_after")

    # -- evaluation -----------------------------------------------------

    def _front_end(self, source: str) -> CachedProgram:
        """Parse/flatten ``source`` into a :class:`CachedProgram` —
        through the content-addressed cache on the warm path, as a
        transient throwaway on the cold one (so both paths speak the
        same artifact language, but only warm skips repeat work)."""
        if self.cache is not None:
            return self.cache.lookup(source)
        return ProgramCache._build(("transient",), source)

    def _with_retries(
        self,
        entry: CachedProgram,
        request: Dict[str, Any],
        seed_id: int,
        builder=NULL_TRACE_BUILDER,
    ) -> Tuple[_Attempt, int]:
        attempts_budget = max(1, self.config.retries + 1)
        policy = RetryPolicy(
            attempts=attempts_budget,
            base_delay=self.config.retry_base_delay,
            seed=self.config.retry_seed + seed_id,
            sleep=self._sleep,
        )
        result, attempts = policy.run(
            lambda i: self._attempt(entry, request, seed_id, i, builder),
            self._retryable,
        )
        return result, attempts

    @staticmethod
    def _retryable(result: _Attempt) -> bool:
        # Transient = environmental: a wall-clock deadline trip, or an
        # asynchronous exception injected by the fault plan.  A value,
        # a synchronous exception, and deterministic step/allocation
        # exhaustion all recur identically on a deterministic machine.
        if result.kind == "resource-exhausted":
            return result.reason == "deadline"
        if result.kind == "exceptional":
            return result.synchronous is False
        return False

    def _attempt(
        self,
        entry: CachedProgram,
        request: Dict[str, Any],
        seed_id: int,
        attempt_number: int,
        builder=NULL_TRACE_BUILDER,
    ) -> _Attempt:
        if self.scheduler is not None:
            return self._attempt_cooperative(
                entry, request, seed_id, attempt_number, builder
            )
        return self._run_evaluation(
            entry, request, seed_id, attempt_number, builder
        )

    def _attempt_cooperative(
        self,
        entry: CachedProgram,
        request: Dict[str, Any],
        seed_id: int,
        attempt_number: int,
        builder=NULL_TRACE_BUILDER,
    ) -> _Attempt:
        """One attempt under the cooperative scheduler: the evaluation
        becomes a :class:`SliceRunner` task, queued under the request's
        tenant/priority and executed in fuel slices by the worker pool;
        this (request) thread blocks until the task completes, so the
        retry policy and response shaping are oblivious to the mode."""
        holder: Dict[str, Any] = {}

        def thunk(gate) -> _Attempt:
            return self._run_evaluation(
                entry,
                request,
                seed_id,
                attempt_number,
                builder,
                gate=gate,
                runner=holder["runner"],
            )

        runner = SliceRunner(thunk, clock=self._clock)
        holder["runner"] = runner
        task = self.scheduler.submit(
            request.get("tenant", "anonymous"),
            request.get("priority", "normal"),
            runner,
        )
        task.wait()
        result = runner.finish()
        builder.annotate(slices=task.slices)
        return result

    def _run_evaluation(
        self,
        entry: CachedProgram,
        request: Dict[str, Any],
        seed_id: int,
        attempt_number: int,
        builder=NULL_TRACE_BUILDER,
        gate=None,
        runner=None,
    ) -> _Attempt:
        config = self.config
        stdin = request.get("stdin", "")
        with builder.span("attempt", number=attempt_number):
            if self.snapshot is not None:
                # Warm: an O(1) fork sharing the frozen prelude heap.
                # The fork carries no instrumentation; sink/governor/
                # fault are attached below, exactly as on the cold
                # path, so both paths instrument the same evaluation
                # window.
                with builder.span("fork"):
                    machine, env = self.snapshot.fork(
                        fuel=config.backstop_fuel()
                    )
            else:
                # Cold: rebuild the entire prelude heap and drive it
                # to the same fully-memoised state a fork starts from
                # (snapshot.warm_machine), so warm and cold responses
                # are byte-identical — same outcome, same counters,
                # same event totals — and only latency distinguishes
                # the paths.
                with builder.span("cold-build"):
                    machine, env = warm_machine(
                        backend=config.backend,
                        fuel=config.backstop_fuel(),
                    )
            sink = CountingSink() if config.collect_events else None
            if sink is not None:
                machine.attach_sink(sink)
            if gate is not None:
                # Sliced mode: the machine parks at slice boundaries,
                # and the governor's deadline is measured against the
                # gate's *active* clock (running time minus parked
                # time) so queueing under a busy scheduler can never
                # consume a request's deadline budget.
                machine.attach_slice_gate(gate)
            governor = ResourceGovernor(
                GovernorLimits(
                    max_steps=config.max_steps,
                    max_allocations=config.max_allocations,
                    deadline_seconds=config.deadline_seconds,
                ),
                clock=gate.active_clock if gate is not None else self._clock,
            )
            if runner is not None:
                # Published for the scheduler: ``governor`` is its
                # preemption hook (§5.1 trips injected mid-slice),
                # ``machine`` lets the runner report exact final-slice
                # step counts.
                runner.governor = governor
                runner.machine = machine
            fault = None
            if config.fault_seed is not None:
                from repro.chaos.faults import FaultPlan

                fault = FaultPlan.seeded(
                    config.fault_seed + seed_id * 31 + attempt_number,
                    horizon=config.fault_horizon,
                    interrupts=1,
                    latencies=1,
                    sleep=self._sleep,
                )
                machine.attach_fault_plan(fault)
            machine.attach_governor(governor)

            program: Any = entry.expr
            if self.snapshot is not None and config.backend in (
                "compiled",
                "super",
            ):
                # The cached lowered program bakes the snapshot's
                # (immutable) cells in and takes the running machine
                # as an argument, so one compilation serves every
                # fork.
                program, env = (
                    entry.code(self.snapshot.env, machine.strategy),
                    (),
                )
            with builder.span("machine-run"):
                # The governor's deadline base is its own clock read,
                # taken *inside* the span, so span bookkeeping can
                # never shift a trip decision.
                governor.start()
                outcome = self._observe(program, env, machine, stdin)
            result = self._classify(outcome, machine, governor, fault, sink)
            # Decorate the attempt with the machine's deterministic
            # counters and the exceptional-set summary — observation
            # after the fact, never interference.
            builder.annotate(
                kind=result.kind,
                steps=result.stats.get("steps"),
                allocations=result.stats.get("allocations"),
            )
            if result.exc is not None:
                builder.annotate(
                    exc=result.exc, synchronous=result.synchronous
                )
            if result.reason is not None:
                builder.annotate(reason=result.reason)
            return result

    def _observe(self, expr, env, machine, stdin: str):
        """Evaluate; perform ``IO`` values through the executor (so
        ``catchIO`` can catch governor-injected interrupts — graceful
        degradation).  Returns an Outcome or an IOResult."""
        from repro.io.run import IOExecutor

        try:
            value = machine.eval(expr, env)
        except (ObjRaise, AsyncInterrupt) as err:
            return Exceptional(err.exc)
        except MachineDiverged:
            return Diverged()
        if isinstance(value, VIO):
            executor = IOExecutor(machine=machine, stdin=stdin)
            return executor.run_cell(Cell.ready(value))
        return Normal(value)

    def _classify(
        self, outcome, machine, governor, fault, sink
    ) -> _Attempt:
        result = _Attempt(kind="value")
        result.stats = machine.stats.as_dict()
        if sink is not None:
            result.events = sink.as_dict()
        if fault is not None:
            result.faults_injected = [
                {"kind": rec.kind, "step": rec.step, "exc": rec.exc}
                for rec in fault.injected
            ]
        trip = governor.trip
        if trip is not None:
            result.trip = {
                "reason": trip.reason,
                "exc": trip.exc,
                "step": trip.step,
                "allocations": trip.allocations,
                "elapsed_seconds": round(trip.elapsed_seconds, 6),
            }

        # IOResult from the executor path.
        if hasattr(outcome, "status") and hasattr(outcome, "stdout"):
            if outcome.status == "ok":
                result.kind = "value"
                result.value = self._render(outcome.value, machine)
                result.stdout = outcome.stdout
                return result
            if outcome.status == "diverged":
                result.kind = "resource-exhausted"
                result.reason = "fuel"
                return result
            outcome = Exceptional(outcome.exc)

        if isinstance(outcome, Diverged):
            result.kind = "resource-exhausted"
            result.reason = "fuel"
            return result
        if isinstance(outcome, Exceptional):
            exc = outcome.exc
            tripped_names = {t.exc for t in governor.trips}
            if exc.name in tripped_names:
                result.kind = "resource-exhausted"
                result.reason = governor.trip.reason
                result.exc = exc.name
                return result
            result.kind = "exceptional"
            result.exc = exc.name
            result.synchronous = exc.synchronous
            return result
        # Normal — render, tolerating an interrupt during forcing of
        # lazy structure (the governor is one-shot but the fault plan
        # may still have pending faults).
        try:
            result.value = self._render(outcome.value, machine)
        except AsyncInterrupt as err:
            result.kind = "exceptional"
            result.exc = err.exc.name
            result.synchronous = False
        return result

    @staticmethod
    def _render(value, machine) -> str:
        if value is None:
            return "()"
        return show_value(value, machine)

    # -- response shaping and metrics -----------------------------------

    def _shape(self, result: _Attempt, attempts: int) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "status": result.kind,
            "attempts": attempts,
            "stats": result.stats,
        }
        if result.kind == "value":
            body["value"] = result.value
            if result.stdout:
                body["stdout"] = result.stdout
        elif result.kind == "exceptional":
            body["exc"] = result.exc
            body["synchronous"] = result.synchronous
        elif result.kind == "resource-exhausted":
            body["reason"] = result.reason
            if result.exc is not None:
                body["exc"] = result.exc
            if result.reason == "deadline":
                body["retry_after"] = round(
                    (self.config.deadline_seconds or 1.0) / 2, 3
                )
        if result.trip is not None:
            body["trip"] = result.trip
        if result.faults_injected:
            body["faults_injected"] = result.faults_injected
        if result.events:
            body["events"] = result.events
        return body

    def _count_status(
        self, status: str, tenant: str = "anonymous"
    ) -> None:
        with self._lock:
            self.requests_by_status[status] = (
                self.requests_by_status.get(status, 0) + 1
            )
        self._m["repro_requests_total"].inc(
            status=status, tenant=self._tenant_label(tenant)
        )

    def _absorb(
        self, result: _Attempt, attempts: int, tenant: str = "anonymous"
    ) -> None:
        self._count_status(result.kind, tenant)
        label = self._tenant_label(tenant)
        self._m["repro_tenant_served_total"].inc(tenant=label)
        steps = result.stats.get("steps", 0)
        if steps:
            self._m["repro_tenant_steps_total"].inc(steps, tenant=label)
        with self._lock:
            for name, count in result.events.items():
                self.event_totals[name] = (
                    self.event_totals.get(name, 0) + count
                )
            if result.trip is not None:
                reason = result.trip["reason"]
                self.trip_totals[reason] = (
                    self.trip_totals.get(reason, 0) + 1
                )
            self.faults_injected += len(result.faults_injected)
            self.retries_performed += attempts - 1
        events_metric = self._m["repro_machine_events_total"]
        for name, count in result.events.items():
            events_metric.inc(count, event=name)
        if result.trip is not None:
            self._m["repro_governor_trips_total"].inc(
                reason=result.trip["reason"]
            )
        if result.faults_injected:
            self._m["repro_faults_injected_total"].inc(
                len(result.faults_injected)
            )
        if attempts > 1:
            self._m["repro_retries_total"].inc(attempts - 1)

    # -- health ---------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        with self._lock:
            requests = dict(sorted(self.requests_by_status.items()))
            events = dict(sorted(self.event_totals.items()))
            trips = dict(sorted(self.trip_totals.items()))
            in_flight = self._in_flight
            total = self._request_counter
            faults = self.faults_injected
            retries = self.retries_performed
            batches = {
                "total": self.batches_total,
                "programs": self.batch_programs_total,
            }
        if self.scheduler is not None:
            snap = self.scheduler.snapshot()
            scheduler_block = {
                "mode": "cooperative",
                "workers": snap["workers"],
                "slice_steps": snap["slice_steps"],
                "run_queue_depth": snap["run_queue_depth"],
                "active_tenants": snap["active_tenants"],
                "slices": snap["slices"],
                "preemptions": snap["preemptions"],
                "starvation_seconds": round(
                    snap["starvation_seconds"], 3
                ),
            }
        else:
            scheduler_block = {
                "mode": "threads",
                "workers": self.config.max_concurrency,
                "slice_steps": None,
                "run_queue_depth": 0,
                "active_tenants": 0,
                "slices": 0,
                "preemptions": 0,
                "starvation_seconds": 0.0,
            }
        return {
            "status": "ok",
            "backend": self.config.backend,
            "warm": self.config.warm,
            "scheduler": scheduler_block,
            "cache": self.cache.stats() if self.cache else None,
            "batches": batches,
            "uptime_seconds": round(self._clock() - self._started_at, 3),
            "requests_total": total,
            "requests": requests,
            "in_flight": in_flight,
            "breaker": self.breaker.as_dict(),
            "events": events,
            "governor_trips": trips,
            "faults_injected": faults,
            "retries_performed": retries,
            "telemetry": {
                "enabled": self.config.telemetry,
                "trace_ring": self.config.trace_ring,
                "traces_recorded": (
                    self.tracer.recorded if self.tracer else 0
                ),
                "traces_retained": (
                    len(self.tracer.traces) if self.tracer else 0
                ),
            },
            "limits": {
                "max_steps": self.config.max_steps,
                "max_allocations": self.config.max_allocations,
                "deadline_seconds": self.config.deadline_seconds,
                "max_concurrency": self.config.max_concurrency,
                "queue_depth": self.config.queue_depth,
            },
        }
