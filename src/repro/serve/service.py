"""The evaluation service: per-request isolation, structured outcomes.

Every request gets a **fresh machine** (no shared heap, no shared
counters — isolation is the whole point of the paper's per-evaluation
semantics), a fresh :class:`~repro.serve.governor.ResourceGovernor`,
and optionally a fresh seeded fault plan (chaos mode).  The outcome is
shaped into one of four structured statuses:

``value``
    Evaluation reached WHNF (for ``IO`` expressions: the action was
    performed; ``stdout`` rides along).
``exceptional``
    The machine observed a member of the denoted exception set — a
    *successful* evaluation in the resilience sense: deterministic,
    semantically meaningful, pointless to retry.
``resource-exhausted``
    A governor limit fired (Section 5.1 fictitious exceptions:
    ``Timeout`` for steps/deadline, ``HeapOverflow`` for the
    allocation cap) or fuel ran out.  Deadline trips are transient and
    retried under the backoff policy; step/allocation trips are
    deterministic and are not.
``rejected``
    The request never reached a machine: admission queue full, or the
    circuit breaker is open (fast rejection with Retry-After).

Concurrency is bounded twice: ``max_concurrency`` machines evaluate at
once, and at most ``queue_depth`` further requests wait; beyond that,
admission fails instantly — a service that queues unboundedly is a
service that falls over late instead of degrading early.

Metrics reuse the PR-1 observability layer verbatim: each request's
machine carries a :class:`~repro.obs.sinks.CountingSink`, and the
per-request counts are merged into service totals for ``/healthz``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.machine.eval import Machine
from repro.machine.heap import AsyncInterrupt, Cell, MachineDiverged, ObjRaise
from repro.machine.observe import (
    Diverged,
    Exceptional,
    Normal,
    show_value,
)
from repro.machine.values import VIO
from repro.obs.sinks import CountingSink
from repro.serve.governor import GovernorLimits, ResourceGovernor
from repro.serve.retry import CircuitBreaker, RetryPolicy


@dataclass(frozen=True)
class ServiceConfig:
    """Service-wide knobs; per-request limits live in the governor."""

    backend: str = "ast"
    max_steps: Optional[int] = 2_000_000
    max_allocations: Optional[int] = 1_000_000
    deadline_seconds: Optional[float] = 5.0
    max_concurrency: int = 4
    queue_depth: int = 16
    retries: int = 0
    retry_base_delay: float = 0.02
    retry_seed: int = 0
    breaker_threshold: int = 5
    breaker_reset_seconds: float = 1.0
    fault_seed: Optional[int] = None
    fault_horizon: int = 2_000
    collect_events: bool = True

    def backstop_fuel(self) -> int:
        """The machine's own fuel — the hard stop behind the governor
        (a catch handler runs past a one-shot trip, but not forever)."""
        if self.max_steps is None:
            return 8_000_000
        return max(self.max_steps * 4, self.max_steps + 1_000)


@dataclass
class _Attempt:
    """One evaluation attempt, before response shaping."""

    kind: str  # value | exceptional | resource-exhausted
    value: Optional[str] = None
    stdout: Optional[str] = None
    exc: Optional[str] = None
    synchronous: Optional[bool] = None
    reason: Optional[str] = None
    stats: Dict[str, int] = field(default_factory=dict)
    events: Dict[str, int] = field(default_factory=dict)
    trip: Optional[dict] = None
    faults_injected: List[dict] = field(default_factory=list)


class EvalService:
    """The thread-safe core behind ``repro serve`` (and the tests,
    which drive it without HTTP).  ``clock`` and ``sleep`` are
    injectable so resilience behaviour is testable without waiting.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = config or ServiceConfig()
        self._clock = clock
        self._sleep = sleep
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            reset_seconds=self.config.breaker_reset_seconds,
            clock=clock,
        )
        self._running = threading.Semaphore(self.config.max_concurrency)
        self._admission = threading.Semaphore(
            self.config.max_concurrency + self.config.queue_depth
        )
        self._lock = threading.Lock()
        self._request_counter = 0
        self._in_flight = 0
        self.requests_by_status: Dict[str, int] = {}
        self.event_totals: Dict[str, int] = {}
        self.trip_totals: Dict[str, int] = {}
        self.faults_injected = 0
        self.retries_performed = 0
        self._started_at = clock()

    # -- request handling -----------------------------------------------

    def handle(
        self, payload: Any
    ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        """Serve one request.  Returns ``(http_status, body,
        retry_after)`` — the HTTP front end turns ``retry_after`` into
        a ``Retry-After`` header; library callers read it from the body.
        """
        if not isinstance(payload, dict) or not isinstance(
            payload.get("expr"), str
        ):
            return (
                400,
                {
                    "status": "error",
                    "reason": "bad-request",
                    "message": 'body must be JSON {"expr": "<source>"}',
                },
                None,
            )
        expr_source = payload["expr"]
        stdin = payload.get("stdin", "")
        if not isinstance(stdin, str):
            stdin = ""

        if not self._admission.acquire(blocking=False):
            retry_after = max(
                (self.config.deadline_seconds or 1.0) / 2, 0.05
            )
            body = {
                "status": "rejected",
                "reason": "queue-full",
                "retry_after": round(retry_after, 3),
            }
            self._count_status("rejected")
            return 429, body, retry_after
        try:
            allowed, retry_after = self.breaker.allow()
            if not allowed:
                body = {
                    "status": "rejected",
                    "reason": "circuit-open",
                    "retry_after": round(retry_after, 3),
                }
                self._count_status("rejected")
                return 503, body, retry_after

            with self._lock:
                self._request_counter += 1
                request_id = self._request_counter

            try:
                expr = self._compile(expr_source)
            except Exception as err:
                # A parse/flatten error is the *client's* failure, not
                # the pool's — it must not open the breaker.
                self.breaker.record_success()
                self._count_status("error")
                return (
                    400,
                    {
                        "status": "error",
                        "reason": "parse-error",
                        "message": str(err),
                    },
                    None,
                )

            self._running.acquire()
            with self._lock:
                self._in_flight += 1
            try:
                attempt_result, attempts = self._with_retries(
                    expr, stdin, request_id
                )
            finally:
                with self._lock:
                    self._in_flight -= 1
                self._running.release()

            body = self._shape(attempt_result, attempts)
            self._absorb(attempt_result, attempts)
            if attempt_result.kind == "resource-exhausted":
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
            return 200, body, body.get("retry_after")
        finally:
            self._admission.release()

    # -- evaluation -----------------------------------------------------

    @staticmethod
    def _compile(source: str):
        from repro.api import compile_expr

        return compile_expr(source)

    def _with_retries(
        self, expr, stdin: str, request_id: int
    ) -> Tuple[_Attempt, int]:
        attempts_budget = max(1, self.config.retries + 1)
        policy = RetryPolicy(
            attempts=attempts_budget,
            base_delay=self.config.retry_base_delay,
            seed=self.config.retry_seed + request_id,
            sleep=self._sleep,
        )
        result, attempts = policy.run(
            lambda i: self._attempt(expr, stdin, request_id, i),
            self._retryable,
        )
        return result, attempts

    @staticmethod
    def _retryable(result: _Attempt) -> bool:
        # Transient = environmental: a wall-clock deadline trip, or an
        # asynchronous exception injected by the fault plan.  A value,
        # a synchronous exception, and deterministic step/allocation
        # exhaustion all recur identically on a deterministic machine.
        if result.kind == "resource-exhausted":
            return result.reason == "deadline"
        if result.kind == "exceptional":
            return result.synchronous is False
        return False

    def _attempt(
        self, expr, stdin: str, request_id: int, attempt_number: int
    ) -> _Attempt:
        from repro.prelude.loader import machine_env

        config = self.config
        machine = Machine(
            fuel=config.backstop_fuel(), backend=config.backend
        )
        sink = CountingSink() if config.collect_events else None
        if sink is not None:
            machine.attach_sink(sink)
        governor = ResourceGovernor(
            GovernorLimits(
                max_steps=config.max_steps,
                max_allocations=config.max_allocations,
                deadline_seconds=config.deadline_seconds,
            ),
            clock=self._clock,
        )
        fault = None
        if config.fault_seed is not None:
            from repro.chaos.faults import FaultPlan

            fault = FaultPlan.seeded(
                config.fault_seed + request_id * 31 + attempt_number,
                horizon=config.fault_horizon,
                interrupts=1,
                latencies=1,
                sleep=self._sleep,
            )
            machine.attach_fault_plan(fault)
        machine.attach_governor(governor)
        governor.start()

        env = machine_env(machine)
        outcome = self._observe(expr, env, machine, stdin)
        return self._classify(outcome, machine, governor, fault, sink)

    def _observe(self, expr, env, machine, stdin: str):
        """Evaluate; perform ``IO`` values through the executor (so
        ``catchIO`` can catch governor-injected interrupts — graceful
        degradation).  Returns an Outcome or an IOResult."""
        from repro.io.run import IOExecutor

        try:
            value = machine.eval(expr, env)
        except (ObjRaise, AsyncInterrupt) as err:
            return Exceptional(err.exc)
        except MachineDiverged:
            return Diverged()
        if isinstance(value, VIO):
            executor = IOExecutor(machine=machine, stdin=stdin)
            return executor.run_cell(Cell.ready(value))
        return Normal(value)

    def _classify(
        self, outcome, machine, governor, fault, sink
    ) -> _Attempt:
        result = _Attempt(kind="value")
        result.stats = machine.stats.as_dict()
        if sink is not None:
            result.events = sink.as_dict()
        if fault is not None:
            result.faults_injected = [
                {"kind": rec.kind, "step": rec.step, "exc": rec.exc}
                for rec in fault.injected
            ]
        trip = governor.trip
        if trip is not None:
            result.trip = {
                "reason": trip.reason,
                "exc": trip.exc,
                "step": trip.step,
                "allocations": trip.allocations,
                "elapsed_seconds": round(trip.elapsed_seconds, 6),
            }

        # IOResult from the executor path.
        if hasattr(outcome, "status") and hasattr(outcome, "stdout"):
            if outcome.status == "ok":
                result.kind = "value"
                result.value = self._render(outcome.value, machine)
                result.stdout = outcome.stdout
                return result
            if outcome.status == "diverged":
                result.kind = "resource-exhausted"
                result.reason = "fuel"
                return result
            outcome = Exceptional(outcome.exc)

        if isinstance(outcome, Diverged):
            result.kind = "resource-exhausted"
            result.reason = "fuel"
            return result
        if isinstance(outcome, Exceptional):
            exc = outcome.exc
            tripped_names = {t.exc for t in governor.trips}
            if exc.name in tripped_names:
                result.kind = "resource-exhausted"
                result.reason = governor.trip.reason
                result.exc = exc.name
                return result
            result.kind = "exceptional"
            result.exc = exc.name
            result.synchronous = exc.synchronous
            return result
        # Normal — render, tolerating an interrupt during forcing of
        # lazy structure (the governor is one-shot but the fault plan
        # may still have pending faults).
        try:
            result.value = self._render(outcome.value, machine)
        except AsyncInterrupt as err:
            result.kind = "exceptional"
            result.exc = err.exc.name
            result.synchronous = False
        return result

    @staticmethod
    def _render(value, machine) -> str:
        if value is None:
            return "()"
        return show_value(value, machine)

    # -- response shaping and metrics -----------------------------------

    def _shape(self, result: _Attempt, attempts: int) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "status": result.kind,
            "attempts": attempts,
            "stats": result.stats,
        }
        if result.kind == "value":
            body["value"] = result.value
            if result.stdout:
                body["stdout"] = result.stdout
        elif result.kind == "exceptional":
            body["exc"] = result.exc
            body["synchronous"] = result.synchronous
        elif result.kind == "resource-exhausted":
            body["reason"] = result.reason
            if result.exc is not None:
                body["exc"] = result.exc
            if result.reason == "deadline":
                body["retry_after"] = round(
                    (self.config.deadline_seconds or 1.0) / 2, 3
                )
        if result.trip is not None:
            body["trip"] = result.trip
        if result.faults_injected:
            body["faults_injected"] = result.faults_injected
        if result.events:
            body["events"] = result.events
        return body

    def _count_status(self, status: str) -> None:
        with self._lock:
            self.requests_by_status[status] = (
                self.requests_by_status.get(status, 0) + 1
            )

    def _absorb(self, result: _Attempt, attempts: int) -> None:
        self._count_status(result.kind)
        with self._lock:
            for name, count in result.events.items():
                self.event_totals[name] = (
                    self.event_totals.get(name, 0) + count
                )
            if result.trip is not None:
                reason = result.trip["reason"]
                self.trip_totals[reason] = (
                    self.trip_totals.get(reason, 0) + 1
                )
            self.faults_injected += len(result.faults_injected)
            self.retries_performed += attempts - 1

    # -- health ---------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        with self._lock:
            requests = dict(sorted(self.requests_by_status.items()))
            events = dict(sorted(self.event_totals.items()))
            trips = dict(sorted(self.trip_totals.items()))
            in_flight = self._in_flight
            total = self._request_counter
            faults = self.faults_injected
            retries = self.retries_performed
        return {
            "status": "ok",
            "backend": self.config.backend,
            "uptime_seconds": round(self._clock() - self._started_at, 3),
            "requests_total": total,
            "requests": requests,
            "in_flight": in_flight,
            "breaker": self.breaker.as_dict(),
            "events": events,
            "governor_trips": trips,
            "faults_injected": faults,
            "retries_performed": retries,
            "limits": {
                "max_steps": self.config.max_steps,
                "max_allocations": self.config.max_allocations,
                "deadline_seconds": self.config.deadline_seconds,
                "max_concurrency": self.config.max_concurrency,
                "queue_depth": self.config.queue_depth,
            },
        }
