"""The stdlib-only HTTP front end for the evaluation service.

Endpoints
---------
``POST /eval``
    Body: ``{"expr": "<source>", "stdin": "<optional>", "typecheck":
    <optional bool>}`` for one program, or ``{"programs": [...]}`` for
    a batch evaluated under a single admission ticket.  Response: one
    of the structured statuses defined in :mod:`repro.serve.schema`
    (rendered into docs/ROBUSTNESS.md; lifecycle in docs/SERVING.md).
    Rejections carry a ``Retry-After`` header.
``GET /healthz``
    Service metrics: request counts by status, breaker state and
    transition history, aggregated trace-event totals, governor trips,
    program-cache hit/miss/eviction counters and batch totals.
``GET /metrics``
    Prometheus text exposition of the service's
    :class:`~repro.obs.telemetry.MetricsRegistry`: request/stage
    latency histograms, per-status counters, breaker/cache/governor
    gauges (family list generated into docs/ROBUSTNESS.md from
    :data:`repro.serve.schema.METRIC_FAMILIES`).  Empty with
    ``--no-telemetry``.

The server is a ``ThreadingHTTPServer``: one Python thread per
connection, with the service's own admission/concurrency bounds doing
the real resource control (threads beyond ``max_concurrency`` park in
the bounded queue or are rejected instantly).
"""

from __future__ import annotations

import json
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.serve.service import EvalService, ServiceConfig

#: Largest request body accepted, in bytes — nobody needs a megabyte
#: of expression, and an unbounded read is a memory-exhaustion vector.
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # The service does its own structured accounting; per-request
    # access-log lines on stderr are just noise in tests and CI.
    def log_message(self, format, *args):  # noqa: A002
        pass

    @property
    def service(self) -> EvalService:
        return self.server.service  # type: ignore[attr-defined]

    def _respond(
        self,
        status: int,
        body: dict,
        retry_after: Optional[float] = None,
    ) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:.3f}")
        self.end_headers()
        self.wfile.write(data)

    def _respond_text(self, status: int, text: str) -> None:
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802
        if self.path == "/healthz":
            self._respond(200, self.service.health())
            return
        if self.path == "/metrics":
            self._respond_text(200, self.service.metrics_text())
            return
        self._respond(
            404, {"status": "error", "reason": "not-found"}
        )

    def do_POST(self) -> None:  # noqa: N802
        if self.path != "/eval":
            self._respond(
                404, {"status": "error", "reason": "not-found"}
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length > MAX_BODY_BYTES:
            # Drain what the client is still sending (bounded — the
            # declared length is untrusted) so the response isn't a
            # broken pipe on their side, then close the connection.
            remaining = min(length, 8 * MAX_BODY_BYTES)
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 65536))
                if not chunk:
                    break
                remaining -= len(chunk)
            self.close_connection = True
            self._respond(
                413,
                {
                    "status": "error",
                    "reason": "body-too-large",
                    "message": f"body exceeds {MAX_BODY_BYTES} bytes",
                },
            )
            return
        if length <= 0:
            self._respond(
                400,
                {
                    "status": "error",
                    "reason": "bad-request",
                    "message": "missing body",
                },
            )
            return
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._respond(
                400,
                {
                    "status": "error",
                    "reason": "bad-json",
                    "message": "body is not valid JSON",
                },
            )
            return
        status, body, retry_after = self.service.handle(payload)
        self._respond(status, body, retry_after)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # The stdlib default listen backlog (5) resets simultaneous
    # connects well below the service's own admission limits; the
    # cooperative scheduler is built for hundreds of concurrent
    # clients, so let the kernel queue them and the admission layer —
    # not the socket — decide who gets a 429.
    request_queue_size = 128


def make_server(
    host: str, port: int, service: EvalService
) -> ThreadingHTTPServer:
    """Bind (port 0 picks a free one — tests use this) and attach the
    service; the caller drives ``serve_forever``/``shutdown``."""
    server = _Server((host, port), _Handler)
    server.service = service  # type: ignore[attr-defined]
    return server


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 8080,
    backend: str = "ast",
    max_steps: int = 2_000_000,
    max_allocations: int = 1_000_000,
    deadline: float = 5.0,
    max_concurrency: int = 4,
    queue_depth: int = 16,
    retries: int = 0,
    breaker_threshold: int = 5,
    breaker_reset: float = 1.0,
    fault_seed: Optional[int] = None,
    warm: bool = True,
    cache_capacity: int = 256,
    max_batch: int = 32,
    telemetry: bool = True,
    trace_ring: int = 256,
    trace_log: Optional[str] = None,
    scheduler: str = "threads",
    workers: int = 2,
    slice_steps: int = 25_000,
    tenant_max_in_flight: Optional[int] = None,
    tenant_step_quota: Optional[int] = None,
) -> int:
    """The ``repro serve`` entry point: run until interrupted."""
    config = ServiceConfig(
        backend=backend,
        max_steps=max_steps,
        max_allocations=max_allocations,
        deadline_seconds=deadline,
        max_concurrency=max_concurrency,
        queue_depth=queue_depth,
        retries=retries,
        breaker_threshold=breaker_threshold,
        breaker_reset_seconds=breaker_reset,
        fault_seed=fault_seed,
        warm=warm,
        cache_capacity=cache_capacity,
        max_batch=max_batch,
        telemetry=telemetry,
        trace_ring=trace_ring,
        trace_log=trace_log,
        scheduler=scheduler,
        workers=workers,
        slice_steps=slice_steps,
        tenant_max_in_flight=tenant_max_in_flight,
        tenant_step_quota=tenant_step_quota,
    )
    service = EvalService(config)
    server = make_server(host, port, service)
    bound_host, bound_port = server.server_address[:2]
    sched_note = (
        f"cooperative scheduler: {workers} workers × "
        f"{slice_steps}-step slices"
        if scheduler == "cooperative"
        else f"concurrency={max_concurrency}, queue={queue_depth}"
    )
    print(
        f"repro serve: listening on http://{bound_host}:{bound_port} "
        f"(backend={backend}, "
        f"{'warm' if warm else 'cold'} path, "
        f"{sched_note})",
        file=sys.stderr,
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    return 0
