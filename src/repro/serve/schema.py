"""The serve API, described once.

PR 5 shipped three descriptions of the same surface — the shaping code
in :mod:`repro.serve.service`, the ``repro serve --help`` text, and
the tables in ``docs/ROBUSTNESS.md`` — and they drifted.  This module
is now the single source of truth:

* :data:`RESPONSE_SCHEMAS` — per-status required/optional response
  fields with one-line descriptions.  The service's tests assert every
  produced body stays inside its schema, and the schema-sync test
  (tests/serve/test_schema.py) asserts the rendered markdown below is
  byte-identical to the block between the ``serve-schema`` markers in
  ``docs/ROBUSTNESS.md``.
* :data:`SERVE_FLAGS` — the ``repro serve`` flag table.  The CLI
  builds its argparse options from these specs, so ``--help`` cannot
  drift either.

Regenerate the docs block after editing this file::

    PYTHONPATH=src python -m repro.serve.schema --write
    PYTHONPATH=src python -m repro.serve.schema --check   # CI mode
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Set, Tuple

# -- response schema ----------------------------------------------------

#: status -> (required {field: description}, optional {field: description})
RESPONSE_SCHEMAS: Dict[str, Tuple[Dict[str, str], Dict[str, str]]] = {
    "value": (
        {
            "status": "`\"value\"` — WHNF reached (IO: action performed)",
            "attempts": "evaluation attempts consumed (>= 1)",
            "stats": "machine counter block (steps, allocations, ...)",
            "value": "rendered result",
            "request_id": "monotonic per-service request sequence number",
            "trace_id": "id of this request's span tree "
            "(docs/OBSERVABILITY.md)",
        },
        {
            "stdout": "output written by the IO action, when non-empty",
            "events": "per-request trace-event totals (when collected)",
            "trip": "governor trip record, if a one-shot limit fired",
            "faults_injected": "chaos-mode fault records, when any fired",
        },
    ),
    "exceptional": (
        {
            "status": "`\"exceptional\"` — a member of the denoted set",
            "attempts": "evaluation attempts consumed (>= 1)",
            "stats": "machine counter block",
            "exc": "the observed exception (one set member, §3.5)",
            "synchronous": "false for §5.1 asynchronous members",
            "request_id": "monotonic per-service request sequence number",
            "trace_id": "id of this request's span tree",
        },
        {
            "events": "per-request trace-event totals (when collected)",
            "trip": "governor trip record, if a one-shot limit fired",
            "faults_injected": "chaos-mode fault records, when any fired",
        },
    ),
    "resource-exhausted": (
        {
            "status": "`\"resource-exhausted\"` — a governor limit or fuel",
            "attempts": "evaluation attempts consumed (>= 1)",
            "stats": "machine counter block",
            "reason": "`steps` | `allocations` | `deadline` | `fuel`",
            "request_id": "monotonic per-service request sequence number",
            "trace_id": "id of this request's span tree",
        },
        {
            "exc": "the delivered fictitious exception "
            "(`Timeout`/`HeapOverflow`)",
            "retry_after": "suggested client backoff (deadline trips only)",
            "trip": "governor trip record",
            "events": "per-request trace-event totals (when collected)",
            "faults_injected": "chaos-mode fault records, when any fired",
        },
    ),
    "rejected": (
        {
            "status": "`\"rejected\"` — never reached a machine",
            "reason": "`queue-full` (429) | `tenant-quota` (429) | "
            "`circuit-open` (503)",
            "retry_after": "seconds to wait (also the Retry-After header)",
            "request_id": "monotonic per-service request sequence number",
            "trace_id": "id of the (admission-only) span tree — lets a "
            "client correlate its retries with server-side traces",
        },
        {},
    ),
    "error": (
        {
            "status": "`\"error\"` — the request itself is at fault",
            "reason": "`bad-request` | `bad-json` | `body-too-large` | "
            "`parse-error` | `type-error` | `batch-too-large` | "
            "`not-found`",
            "message": "human-readable detail",
        },
        {
            "request_id": "present when the request reached the service "
            "(absent for transport-level errors shaped by the HTTP "
            "front end: `bad-json`, `body-too-large`, `not-found`)",
            "trace_id": "present exactly when `request_id` is",
        },
    ),
    "batch": (
        {
            "status": "`\"batch\"` — a `{\"programs\": [...]}` request",
            "count": "number of programs evaluated",
            "results": "per-program response bodies, in request order, "
            "each one of the statuses above",
            "request_id": "the batch envelope's own sequence number",
            "trace_id": "the envelope trace (admission/breaker spans); "
            "per-program traces carry it as `parent`",
        },
        {},
    ),
}

#: HTTP status codes per response status (rejected varies by reason).
HTTP_STATUS = {
    "value": "200",
    "exceptional": "200",
    "resource-exhausted": "200",
    "batch": "200",
    "rejected": "429 / 503",
    "error": "400 / 404 / 413",
}


def schema_sets(status: str) -> Tuple[Set[str], Set[str]]:
    """(required, optional) field-name sets — the test-suite view."""
    required, optional = RESPONSE_SCHEMAS[status]
    return set(required), set(optional)


# -- /healthz shape -----------------------------------------------------

#: field -> (value kind, description).  The telemetry test gates
#: ``set(EvalService().health()) == set(HEALTH_SCHEMA)`` so this table
#: cannot drift from the code.
HEALTH_SCHEMA: Dict[str, Tuple[str, str]] = {
    "status": ("string", "always `\"ok\"` when the service answers"),
    "backend": ("string", "evaluator backend (`ast`/`compiled`/`super`)"),
    "warm": ("bool", "snapshot-fork warm path enabled"),
    "cache": (
        "object/null",
        "program-cache hits/misses/evictions/size (null when cold)",
    ),
    "batches": ("object", "batch envelopes and programs served"),
    "uptime_seconds": ("number", "seconds since service construction"),
    "requests_total": (
        "int",
        "programs served (batch of N counts N; rejections excluded)",
    ),
    "requests": ("object", "per-status request counts"),
    "in_flight": ("int", "programs evaluating right now"),
    "breaker": ("object", "circuit-breaker state + transition history"),
    "events": ("object", "aggregated machine trace-event totals"),
    "governor_trips": ("object", "one-shot governor trips by reason"),
    "faults_injected": ("int", "chaos-mode faults delivered"),
    "retries_performed": ("int", "extra attempts beyond the first"),
    "telemetry": (
        "object",
        "enabled flag, trace-ring occupancy, traces recorded",
    ),
    "scheduler": (
        "object",
        "mode (`threads`/`cooperative`) plus, in cooperative mode, "
        "workers, run-queue depth, active tenants, slices, "
        "preemptions and the starvation watermark "
        "(docs/SERVING.md)",
    ),
    "limits": ("object", "configured per-request and admission limits"),
}


# -- /metrics families --------------------------------------------------


@dataclass(frozen=True)
class MetricSpec:
    """One exposition family — name, kind, labels, meaning.  The
    service builds its registry from these specs and the telemetry
    test gates the rendered ``/metrics`` families against them."""

    name: str
    kind: str  # counter | gauge | histogram
    help: str
    labels: Tuple[str, ...] = ()
    #: Histogram bucket family: "latency" (log-spaced seconds) or
    #: "steps" (log-spaced machine-step counts).  Ignored for
    #: counters/gauges.
    buckets: str = "latency"

    def display_name(self) -> str:
        if self.labels:
            return f"{self.name}{{{','.join(self.labels)}}}"
        return self.name


METRIC_FAMILIES: Tuple[MetricSpec, ...] = (
    MetricSpec(
        "repro_uptime_seconds",
        "gauge",
        "seconds since service construction (injectable clock)",
    ),
    MetricSpec(
        "repro_in_flight", "gauge", "programs evaluating right now"
    ),
    MetricSpec(
        "repro_requests_total",
        "counter",
        "responses by structured status and tenant (bounded "
        "cardinality: first-K distinct tenants, then `other`)",
        ("status", "tenant"),
    ),
    MetricSpec(
        "repro_request_seconds",
        "histogram",
        "per-program service latency, front end through shaping",
    ),
    MetricSpec(
        "repro_stage_seconds",
        "histogram",
        "per-stage latency from the request span tree",
        ("stage",),
    ),
    MetricSpec(
        "repro_breaker_state",
        "gauge",
        "circuit breaker: 0 closed, 1 half-open, 2 open",
    ),
    MetricSpec(
        "repro_cache_hits_total",
        "counter",
        "program-cache hits (0 on the cold path)",
    ),
    MetricSpec(
        "repro_cache_misses_total",
        "counter",
        "program-cache misses (0 on the cold path)",
    ),
    MetricSpec(
        "repro_governor_trips_total",
        "counter",
        "one-shot governor trips by reason",
        ("reason",),
    ),
    MetricSpec(
        "repro_retries_total",
        "counter",
        "extra evaluation attempts beyond the first",
    ),
    MetricSpec(
        "repro_faults_injected_total",
        "counter",
        "chaos-mode faults delivered",
    ),
    MetricSpec(
        "repro_batches_total", "counter", "batch envelopes served"
    ),
    MetricSpec(
        "repro_batch_programs_total",
        "counter",
        "programs served inside batch envelopes",
    ),
    MetricSpec(
        "repro_machine_events_total",
        "counter",
        "aggregated machine trace events by name",
        ("event",),
    ),
    MetricSpec(
        "repro_traces_total",
        "counter",
        "completed span trees recorded in the trace ring",
    ),
    MetricSpec(
        "repro_run_queue_depth",
        "gauge",
        "evaluations parked in the cooperative run queue "
        "(0 in threads mode)",
    ),
    MetricSpec(
        "repro_active_tenants",
        "gauge",
        "tenants with queued or running work (0 in threads mode)",
    ),
    MetricSpec(
        "repro_sched_slices_total",
        "counter",
        "fuel slices executed by the cooperative scheduler",
    ),
    MetricSpec(
        "repro_sched_preemptions_total",
        "counter",
        "mid-slice §5.1 preemptions injected for tenant step quotas",
    ),
    MetricSpec(
        "repro_starvation_seconds",
        "gauge",
        "high-watermark of ready-to-scheduled wait across all tasks",
    ),
    MetricSpec(
        "repro_slice_steps",
        "histogram",
        "machine steps executed per scheduler slice",
        buckets="steps",
    ),
    MetricSpec(
        "repro_first_slice_seconds",
        "histogram",
        "submit-to-first-slice latency in the cooperative scheduler",
    ),
    MetricSpec(
        "repro_tenant_steps_total",
        "counter",
        "machine steps consumed per tenant (bounded cardinality)",
        ("tenant",),
    ),
    MetricSpec(
        "repro_tenant_served_total",
        "counter",
        "programs completed per tenant (bounded cardinality)",
        ("tenant",),
    ),
)


# -- serve flags --------------------------------------------------------


@dataclass(frozen=True)
class FlagSpec:
    """One ``repro serve`` option, argparse- and docs-renderable."""

    flag: str
    help: str
    type: Optional[type] = None
    default: object = None
    choices: Optional[Tuple[str, ...]] = None
    action: Optional[str] = None  # e.g. "store_false" switches
    dest: Optional[str] = None
    kwargs: dict = field(default_factory=dict)

    def add_to(self, parser) -> None:
        kwargs = dict(self.kwargs)
        if self.action is not None:
            kwargs["action"] = self.action
        else:
            kwargs["type"] = self.type
        if self.choices is not None:
            kwargs["choices"] = list(self.choices)
        if self.dest is not None:
            kwargs["dest"] = self.dest
        parser.add_argument(
            self.flag, default=self.default, help=self.help, **kwargs
        )

    def default_text(self) -> str:
        if self.action in ("store_true", "store_false"):
            return "on" if self.default else "off"
        return "—" if self.default is None else str(self.default)


SERVE_FLAGS: Tuple[FlagSpec, ...] = (
    FlagSpec("--host", "interface to bind", str, "127.0.0.1"),
    FlagSpec("--port", "port to bind (0 picks a free one)", int, 8080),
    FlagSpec(
        "--backend",
        "evaluator backend for every request",
        str,
        "ast",
        choices=("ast", "compiled", "super"),
    ),
    FlagSpec("--max-steps", "per-request step budget", int, 2_000_000),
    FlagSpec(
        "--max-allocations", "per-request allocation cap", int, 1_000_000
    ),
    FlagSpec(
        "--deadline",
        "per-request wall-clock deadline (seconds)",
        float,
        5.0,
    ),
    FlagSpec(
        "--max-concurrency",
        "requests evaluated concurrently (threads mode) or admitted "
        "in-flight (cooperative mode)",
        int,
        4,
    ),
    FlagSpec(
        "--scheduler",
        "execution model: one thread per request, or the fuel-sliced "
        "cooperative multi-tenant scheduler (docs/SERVING.md)",
        str,
        "threads",
        choices=("threads", "cooperative"),
    ),
    FlagSpec(
        "--workers",
        "cooperative scheduler worker threads",
        int,
        2,
    ),
    FlagSpec(
        "--slice-steps",
        "machine steps granted per cooperative scheduler slice",
        int,
        25_000,
    ),
    FlagSpec(
        "--tenant-max-in-flight",
        "per-tenant admitted-request cap (429 `tenant-quota` beyond)",
        int,
        None,
    ),
    FlagSpec(
        "--tenant-step-quota",
        "per-tenant in-flight machine-step budget; beyond it the "
        "scheduler preempts with a mid-slice Timeout",
        int,
        None,
    ),
    FlagSpec(
        "--queue-depth",
        "admission queue length beyond the concurrency limit",
        int,
        16,
    ),
    FlagSpec(
        "--retries",
        "retry budget for transiently failed evaluations",
        int,
        0,
    ),
    FlagSpec(
        "--breaker-threshold",
        "consecutive failures before the circuit breaker opens",
        int,
        5,
    ),
    FlagSpec(
        "--breaker-reset",
        "seconds the breaker stays open before half-opening",
        float,
        1.0,
    ),
    FlagSpec(
        "--fault-seed",
        "attach a seeded chaos fault plan to every request (testing)",
        int,
        None,
    ),
    FlagSpec(
        "--no-warm",
        "disable the warm path: rebuild the prelude per request "
        "instead of forking the shared snapshot (docs/SERVING.md)",
        default=True,
        action="store_false",
        dest="warm",
    ),
    FlagSpec(
        "--cache-capacity",
        "LRU bound on the content-addressed program cache",
        int,
        256,
    ),
    FlagSpec(
        "--max-batch",
        "largest accepted {\"programs\": [...]} batch",
        int,
        32,
    ),
    FlagSpec(
        "--no-telemetry",
        "disable the metrics registry and request tracing "
        "(request/trace ids are still echoed; docs/OBSERVABILITY.md)",
        default=True,
        action="store_false",
        dest="telemetry",
    ),
    FlagSpec(
        "--trace-ring",
        "completed span trees kept in the in-memory ring",
        int,
        256,
    ),
    FlagSpec(
        "--trace-log",
        "append one JSON line per completed trace to this file",
        str,
        None,
    ),
)


def add_serve_flags(parser) -> None:
    """Install every serve flag on an argparse parser."""
    for spec in SERVE_FLAGS:
        spec.add_to(parser)


# -- markdown rendering -------------------------------------------------

MARKER_START = "<!-- serve-schema:start (generated by repro.serve.schema; do not edit by hand) -->"
MARKER_END = "<!-- serve-schema:end -->"

DOCS_PATH = Path(__file__).resolve().parents[3] / "docs" / "ROBUSTNESS.md"


def _cell(text: str) -> str:
    """Escape a description for use inside a markdown table cell."""
    return text.replace("|", "\\|")


def render_markdown() -> str:
    """The generated docs block: response schema + flag table."""
    lines = [MARKER_START, ""]
    lines.append("#### Response schema (generated)")
    lines.append("")
    for status, (required, optional) in RESPONSE_SCHEMAS.items():
        lines.append(
            f"**`{status}`** — HTTP {HTTP_STATUS[status]}"
        )
        lines.append("")
        lines.append("| field | | description |")
        lines.append("|---|---|---|")
        for name, desc in required.items():
            lines.append(f"| `{name}` | required | {_cell(desc)} |")
        for name, desc in optional.items():
            lines.append(f"| `{name}` | optional | {_cell(desc)} |")
        lines.append("")
    lines.append("#### `GET /healthz` fields (generated)")
    lines.append("")
    lines.append("| field | kind | description |")
    lines.append("|---|---|---|")
    for name, (kind, desc) in HEALTH_SCHEMA.items():
        lines.append(f"| `{name}` | {kind} | {_cell(desc)} |")
    lines.append("")
    lines.append("#### `GET /metrics` families (generated)")
    lines.append("")
    lines.append(
        "Prometheus text exposition; histograms use the log-spaced "
        "latency buckets from `repro.obs.telemetry.LATENCY_BUCKETS` "
        "(step-valued histograms use `STEP_BUCKETS`)."
    )
    lines.append("")
    lines.append("| family | type | description |")
    lines.append("|---|---|---|")
    for metric in METRIC_FAMILIES:
        lines.append(
            f"| `{metric.display_name()}` | {metric.kind} | "
            f"{_cell(metric.help)} |"
        )
    lines.append("")
    lines.append("#### `repro serve` flags (generated)")
    lines.append("")
    lines.append("| flag | default | meaning |")
    lines.append("|---|---|---|")
    for spec in SERVE_FLAGS:
        lines.append(
            f"| `{spec.flag}` | {spec.default_text()} | "
            f"{_cell(spec.help)} |"
        )
    lines.append("")
    lines.append(MARKER_END)
    return "\n".join(lines)


def extract_block(text: str) -> Optional[str]:
    """The current generated block inside ``text``, markers included."""
    pattern = re.compile(
        re.escape(MARKER_START) + r".*?" + re.escape(MARKER_END),
        re.DOTALL,
    )
    match = pattern.search(text)
    return match.group(0) if match else None


def sync_docs(path: Path = DOCS_PATH, write: bool = False) -> bool:
    """True when the docs block matches :func:`render_markdown`.

    With ``write=True``, splice the freshly rendered block in place of
    the stale one first.
    """
    text = path.read_text()
    current = extract_block(text)
    rendered = render_markdown()
    if current == rendered:
        return True
    if write and current is not None:
        path.write_text(text.replace(current, rendered))
        return True
    return False


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="sync the generated serve-schema block in "
        "docs/ROBUSTNESS.md"
    )
    parser.add_argument("--write", action="store_true")
    parser.add_argument("--check", action="store_true")
    args = parser.parse_args(argv)
    if args.write:
        ok = sync_docs(write=True)
        print("docs/ROBUSTNESS.md serve-schema block updated"
              if ok else "markers not found")
        return 0 if ok else 1
    ok = sync_docs(write=False)
    print("serve-schema block in sync" if ok
          else "serve-schema block STALE — run with --write")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
