"""The cooperative multi-tenant scheduler behind ``--scheduler
cooperative``.

Thread-per-request serving makes concurrency a thread count; this
module makes it an architecture property.  A small worker pool (W
threads) drives an arbitrary number of in-flight evaluations by
granting each a bounded **fuel slice** per turn through
:class:`repro.machine.slices.SliceRunner` — the evaluation parks in
place at the slice boundary and goes back into its tenant's queue, so
a thousand admitted requests cost a thousand parked continuations,
not a thousand runnable threads fighting for the GIL.

Fair share is **deficit round-robin over tenants**: active tenants sit
in a rotation; each visit credits the tenant's deficit counter with a
quantum (``slice_steps`` × the priority weight of the task at the head
of its queue) and runs one slice against the accumulated credit, so a
tenant whose slices underrun keeps the difference and no tenant can
buy more machine-steps per round than its weight.  Priority classes
(``interactive`` > ``normal`` > ``batch``) order tasks *within* a
tenant and scale the quantum; tenants themselves are peers — one
tenant flooding requests competes with itself, not with the others.

Preemption is §5.1, not bookkeeping: when a tenant's in-flight
machine-step consumption exceeds ``tenant_step_quota``, the scheduler
injects a one-shot ``Timeout`` through the task's
:class:`~repro.serve.governor.ResourceGovernor`
(:meth:`~repro.serve.governor.ResourceGovernor.inject`), which the
machine delivers mid-slice via the ordinary ``AsyncInterrupt`` path —
so a preempted hot tenant is observationally identical to one that
tripped a step limit: same trip record, same trace span, same
``resource-exhausted`` response, same breaker accounting.

``schedule_seed`` deterministically perturbs the rotation order — the
knob the chaos explorer's schedule axis sweeps to prove that *no*
interleaving of slices changes any response body (request machines
share no mutable state, so any schedule-dependent observable is a
real isolation bug).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.core.excset import TIMEOUT
from repro.machine.slices import SliceRunner

__all__ = [
    "PRIORITIES",
    "CooperativeScheduler",
    "SchedulerHooks",
    "Task",
]

#: Priority classes -> quantum weight.  The weight scales the DRR
#: quantum, so an ``interactive`` tenant visit buys 4× the
#: machine-steps of a ``batch`` visit; within one tenant's queue,
#: higher classes run first.
PRIORITIES: Dict[str, int] = {
    "interactive": 4,
    "normal": 2,
    "batch": 1,
}

#: Intra-tenant service order.
_PRIORITY_ORDER = ("interactive", "normal", "batch")


@dataclass
class SchedulerHooks:
    """Telemetry fan-out, injected by the service (every field is
    optional so the scheduler stays standalone-testable).  Histograms
    get ``observe()``; the tenant callables carry the service's
    bounded-cardinality label discipline."""

    slice_steps: Any = None  # histogram: steps executed per slice
    first_slice: Any = None  # histogram: submit -> first slice seconds
    tenant_steps: Optional[Callable[[str, int], None]] = None
    tenant_served: Optional[Callable[[str], None]] = None


class Task:
    """One submitted evaluation: the slice runner plus its scheduling
    identity and accounting."""

    __slots__ = (
        "runner",
        "tenant",
        "priority",
        "enqueued_at",
        "last_ready_at",
        "first_slice_at",
        "slices",
        "steps",
        "preempted",
        "_event",
    )

    def __init__(
        self, runner: SliceRunner, tenant: str, priority: str, now: float
    ) -> None:
        self.runner = runner
        self.tenant = tenant
        self.priority = priority
        self.enqueued_at = now
        self.last_ready_at = now
        self.first_slice_at: Optional[float] = None
        self.slices = 0
        self.steps = 0
        self.preempted = False
        self._event = threading.Event()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block the submitting thread until the evaluation completes
        (the runner's ``finish()`` then surfaces the result)."""
        return self._event.wait(timeout)


@dataclass
class _TenantState:
    """Per-tenant scheduling state."""

    queues: Dict[str, deque] = field(
        default_factory=lambda: {p: deque() for p in _PRIORITY_ORDER}
    )
    deficit: int = 0
    running: int = 0  # tasks currently holding a worker
    inflight_steps: int = 0  # steps consumed by unfinished tasks
    served: int = 0

    def queued(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def pop(self) -> Optional[Task]:
        for priority in _PRIORITY_ORDER:
            queue = self.queues[priority]
            if queue:
                return queue.popleft()
        return None

    @property
    def active(self) -> bool:
        return self.running > 0 or self.queued() > 0


class CooperativeScheduler:
    """Deficit round-robin fuel-slice executor over per-tenant queues.

    ``workers`` threads loop: pick the next tenant from the rotation,
    credit its deficit, grant one slice to its head task, account, and
    either requeue (yielded) or complete (done).  ``clock`` is
    injectable — with a constant clock every timing field the
    scheduler touches becomes deterministic, which the chaos schedule
    axis relies on for byte-parity oracles.
    """

    def __init__(
        self,
        workers: int = 2,
        slice_steps: int = 25_000,
        tenant_step_quota: Optional[int] = None,
        schedule_seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
        hooks: Optional[SchedulerHooks] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if slice_steps < 1:
            raise ValueError("slice_steps must be >= 1")
        self.workers = workers
        self.slice_steps = slice_steps
        self.tenant_step_quota = tenant_step_quota
        self.schedule_seed = schedule_seed
        self._clock = clock
        self.hooks = hooks or SchedulerHooks()
        self._cond = threading.Condition()
        self._tenants: "OrderedDict[str, _TenantState]" = OrderedDict()
        self._rotation: deque = deque()
        self._live: set = set()  # every unfinished Task, for close()
        self._running = True
        self._paused = False
        self._queued = 0
        # Rotation perturbation state for the schedule axis: a tiny
        # LCG seeded from schedule_seed; seed 0 keeps strict rotation.
        self._rng = schedule_seed & 0xFFFFFFFF
        self.slices_total = 0
        self.preemptions_total = 0
        self.tasks_submitted = 0
        self.tasks_completed = 0
        self.starvation_seconds = 0.0  # high-watermark of ready-wait
        self._threads = [
            threading.Thread(
                target=self._worker,
                name=f"repro-sched-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ----------------------------------------------------

    def submit(
        self, tenant: str, priority: str, runner: SliceRunner
    ) -> Task:
        """Enqueue one evaluation.  The caller blocks on
        ``task.wait()``; completion is signalled from the runner's
        continuation thread, so a parked task that self-finishes (an
        interrupt delivered on wake-up) never strands its waiter."""
        if priority not in PRIORITIES:
            raise ValueError(
                f"unknown priority {priority!r}; "
                f"expected one of {sorted(PRIORITIES)}"
            )
        task = Task(runner, tenant, priority, self._clock())
        runner.on_done = lambda _runner: self._task_finished(task)
        with self._cond:
            if not self._running:
                raise RuntimeError("scheduler is closed")
            state = self._tenants.get(tenant)
            if state is None:
                state = self._tenants[tenant] = _TenantState()
            state.queues[priority].append(task)
            self._live.add(task)
            self._queued += 1
            self.tasks_submitted += 1
            if tenant not in self._rotation:
                self._rotation.append(tenant)
            self._cond.notify()
        return task

    # -- the worker loop -----------------------------------------------

    def _next_rotation_index(self) -> int:
        """Which rotation slot to visit next (0 = strict round-robin).
        A non-zero ``schedule_seed`` draws from the LCG so sweeps
        explore different interleavings deterministically-per-seed."""
        if self.schedule_seed == 0 or len(self._rotation) <= 1:
            return 0
        self._rng = (self._rng * 1103515245 + 12345) & 0x7FFFFFFF
        return self._rng % len(self._rotation)

    def _pick(self) -> Optional[Task]:
        """Under the lock: choose the next (tenant, task) by DRR, or
        None when the scheduler is shutting down."""
        while True:
            if not self._running:
                return None
            if self._paused:
                self._cond.wait()
                continue
            ready = None
            while self._rotation:
                index = self._next_rotation_index()
                tenant = self._rotation[index]
                state = self._tenants[tenant]
                if state.queued():
                    ready = (index, tenant, state)
                    break
                # Idle tenant: drop from the rotation (and forget the
                # deficit — standard DRR, an idle tenant must not bank
                # credit).  Re-added on its next submit/requeue.
                del self._rotation[index]
                state.deficit = 0
            if ready is None:
                self._cond.wait()
                continue
            index, tenant, state = ready
            task = state.pop()
            # Move the visited tenant to the rotation's tail.
            del self._rotation[index]
            if state.queued():
                self._rotation.append(tenant)
            self._queued -= 1
            state.running += 1
            state.deficit += self.slice_steps * PRIORITIES[task.priority]
            return task

    def _worker(self) -> None:
        while True:
            with self._cond:
                task = self._pick()
                if task is None:
                    return
                state = self._tenants[task.tenant]
                grant = max(1, state.deficit)
                preempt = (
                    self.tenant_step_quota is not None
                    and not task.preempted
                    and state.inflight_steps > self.tenant_step_quota
                )
                now = self._clock()
                waited = now - task.last_ready_at
                if waited > self.starvation_seconds:
                    self.starvation_seconds = waited
                if task.first_slice_at is None:
                    task.first_slice_at = now
                    if self.hooks.first_slice is not None:
                        self.hooks.first_slice.observe(
                            now - task.enqueued_at
                        )
            if preempt:
                self._preempt(task)
            status = task.runner.run_slice(grant)
            with self._cond:
                self.slices_total += 1
                task.slices += 1
                task.steps += status.steps
                state.deficit = max(0, state.deficit - status.steps)
                state.running -= 1
                # ``inflight_steps`` = steps consumed by this tenant's
                # *unfinished* tasks: a yielded slice adds its steps, a
                # completion retires the task's earlier contributions.
                # All transitions happen here, under the lock, on the
                # worker that ran the slice — the on_done callback
                # deliberately leaves this field alone to avoid racing
                # a completion against its own final slice.
                done = status.done or task.runner.gate.finished
                if done:
                    state.inflight_steps = max(
                        0,
                        state.inflight_steps
                        - (task.steps - status.steps),
                    )
                else:
                    state.inflight_steps += status.steps
                if self.hooks.slice_steps is not None and status.steps:
                    self.hooks.slice_steps.observe(status.steps)
                if self.hooks.tenant_steps is not None and status.steps:
                    self.hooks.tenant_steps(task.tenant, status.steps)
                if not done:
                    # Back of the line (its own tenant's line).
                    task.last_ready_at = self._clock()
                    state.queues[task.priority].append(task)
                    self._queued += 1
                    if task.tenant not in self._rotation:
                        self._rotation.append(task.tenant)
                    self._cond.notify()

    def _preempt(self, task: Task) -> None:
        """Deliver a §5.1 ``Timeout`` to a quota-busting task through
        its governor so the trip is counted, trace-spanned and shaped
        exactly like any other resource limit.  Falls back to the
        gate's own interrupt when no governor was attached (bare
        runners in tests)."""
        task.preempted = True
        with self._cond:
            self.preemptions_total += 1
        governor = getattr(task.runner, "governor", None)
        if governor is not None:
            governor.inject("tenant-quota", TIMEOUT)
        else:
            task.runner.interrupt(TIMEOUT)

    def _task_finished(self, task: Task) -> None:
        """Completion bookkeeping — runs on the task's continuation
        thread (via ``runner.on_done``), the only place that sees
        *every* completion, including a parked task unwinding from an
        interrupt without ever being granted another slice."""
        with self._cond:
            state = self._tenants.get(task.tenant)
            if state is not None:
                state.served += 1
            self._live.discard(task)
            self.tasks_completed += 1
            if self.hooks.tenant_served is not None:
                self.hooks.tenant_served(task.tenant)
        task._event.set()

    # -- quiesce -------------------------------------------------------

    def pause(self) -> None:
        """Stop granting slices.  Submission, parked continuations and
        in-flight slices are untouched — workers finish the slice they
        are driving and then idle, so the run queue accumulates.  Used
        to quiesce the pool (drain-free maintenance) and by the soak
        gate to build a known in-flight population before draining."""
        with self._cond:
            self._paused = True

    def resume(self) -> None:
        """Start granting slices again."""
        with self._cond:
            self._paused = False
            self._cond.notify_all()

    # -- introspection -------------------------------------------------

    def run_queue_depth(self) -> int:
        with self._cond:
            return self._queued

    def active_tenants(self) -> int:
        with self._cond:
            return sum(
                1 for s in self._tenants.values() if s.active
            )

    def snapshot(self) -> Dict[str, Any]:
        """The ``/healthz`` scheduler block (sans ``mode``, which the
        service owns)."""
        with self._cond:
            return {
                "workers": self.workers,
                "slice_steps": self.slice_steps,
                "run_queue_depth": self._queued,
                "active_tenants": sum(
                    1 for s in self._tenants.values() if s.active
                ),
                "slices": self.slices_total,
                "preemptions": self.preemptions_total,
                "submitted": self.tasks_submitted,
                "completed": self.tasks_completed,
                "starvation_seconds": round(self.starvation_seconds, 6),
            }

    def tenant_stats(self) -> Dict[str, Dict[str, int]]:
        with self._cond:
            return {
                tenant: {
                    "queued": state.queued(),
                    "running": state.running,
                    "served": state.served,
                    "inflight_steps": state.inflight_steps,
                }
                for tenant, state in sorted(self._tenants.items())
            }

    # -- shutdown ------------------------------------------------------

    def close(self, cancel: bool = True) -> None:
        """Stop the workers.  With ``cancel`` (default) every
        unfinished task gets a ``ControlC`` through its gate — parked
        continuations wake just to unwind, so no submitter is left
        waiting on a task that will never run again."""
        from repro.core.excset import CONTROL_C

        with self._cond:
            if not self._running:
                return
            self._running = False
            pending = list(self._live)
            self._cond.notify_all()
        if cancel:
            for task in pending:
                task.runner.interrupt(CONTROL_C)
        for thread in self._threads:
            thread.join(timeout=5.0)
