"""Resilience primitives: retry with backoff, and a circuit breaker.

Both are deliberately boring, stdlib-only implementations of the
standard patterns — what is *not* boring is what counts as a failure
here.  An ``Exceptional`` outcome is a **success** for resilience
purposes: the semantics delivered a well-defined member of the
denoted exception set, and retrying it would be semantically
pointless (the machine is deterministic).  Only *environmental*
outcomes — deadline trips, injected faults, queue pressure — are
transient, and those are exactly the Section 5.1 asynchronous
exceptions, which "perhaps will not recur (at all) if the same
program is run again".  The paper's taxonomy is the retry policy.

Determinism: backoff jitter comes from a seeded ``random.Random``, so
a test (or an incident replay) sees the same delay sequence every
time; the sleep function is injectable so nothing in the suite
actually waits.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, List, Optional, Tuple

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class RetryPolicy:
    """Exponential backoff with seeded full jitter.

    ``attempts`` is the total number of tries (1 = no retries).  The
    delay before retry ``n`` (1-based) is drawn uniformly from
    ``[0, min(max_delay, base_delay * multiplier**(n-1))]`` — AWS-style
    full jitter, but reproducible because the RNG is seeded.
    """

    def __init__(
        self,
        attempts: int = 3,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 2.0,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.attempts = attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self._rng = random.Random(seed)
        self._sleep = sleep
        self.delays_taken: List[float] = []

    def backoff(self, retry_number: int) -> float:
        """The (jittered) delay before 1-based retry ``retry_number``."""
        ceiling = min(
            self.max_delay,
            self.base_delay * (self.multiplier ** (retry_number - 1)),
        )
        return self._rng.uniform(0.0, ceiling)

    def run(
        self,
        attempt: Callable[[int], object],
        retryable: Callable[[object], bool],
    ) -> Tuple[object, int]:
        """Call ``attempt(i)`` (1-based) up to ``attempts`` times,
        backing off between tries while ``retryable(result)`` holds.
        Returns ``(final_result, attempts_used)`` — the last result is
        returned as-is when the budget runs out (the caller reports a
        structured failure; nothing is raised from here)."""
        result = attempt(1)
        for i in range(2, self.attempts + 1):
            if not retryable(result):
                return result, i - 1
            delay = self.backoff(i - 1)
            self.delays_taken.append(delay)
            if delay > 0:
                self._sleep(delay)
            result = attempt(i)
        return result, self.attempts if self.attempts > 1 else 1


class CircuitBreaker:
    """Classic three-state breaker guarding the evaluation pool.

    * **closed** — requests flow; ``threshold`` *consecutive* failures
      open it.
    * **open** — requests are rejected instantly with a Retry-After
      hint, until ``reset_seconds`` have passed.
    * **half-open** — one probe request is admitted; its success
      closes the breaker, its failure re-opens it (and restarts the
      clock).

    Thread-safe; the clock is injectable for tests.  ``transitions``
    records every state change as ``(state, at_seconds)`` so the soak
    test can assert the breaker actually opened *and* closed.
    """

    def __init__(
        self,
        threshold: int = 5,
        reset_seconds: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False
        self.transitions: List[Tuple[str, float]] = []
        self.fast_rejections = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _transition(self, state: str) -> None:
        self._state = state
        self.transitions.append((state, self._clock()))

    def allow(self) -> Tuple[bool, float]:
        """May a request proceed?  Returns ``(allowed, retry_after)``;
        ``retry_after`` is the seconds a rejected caller should wait."""
        with self._lock:
            if self._state == CLOSED:
                return True, 0.0
            now = self._clock()
            if self._state == OPEN:
                remaining = self.reset_seconds - (now - self._opened_at)
                if remaining > 0:
                    self.fast_rejections += 1
                    return False, max(remaining, 0.001)
                self._transition(HALF_OPEN)
                self._probe_in_flight = True
                return True, 0.0
            # half-open: exactly one probe at a time.
            if self._probe_in_flight:
                self.fast_rejections += 1
                return False, max(self.reset_seconds, 0.001)
            self._probe_in_flight = True
            return True, 0.0

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != CLOSED:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            if self._state == HALF_OPEN:
                self._opened_at = self._clock()
                self._transition(OPEN)
                return
            self._consecutive_failures += 1
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self.threshold
            ):
                self._opened_at = self._clock()
                self._transition(OPEN)

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "fast_rejections": self.fast_rejections,
                "transitions": [
                    {"state": s, "at": round(t, 6)}
                    for s, t in self.transitions
                ],
            }
