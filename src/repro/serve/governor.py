"""Per-request resource limits as Section 5.1 fictitious exceptions.

"An external monitoring system might observe that the evaluation of
[an expression] had gone on for a long time, and attempt to abort the
computation" — the paper's Timeout story, and the whole design of this
module.  A :class:`ResourceGovernor` polices one evaluation: it is
consulted by ``Machine._tick_slow`` once per step (attach with
``Machine.attach_governor``) and, when a limit is breached, answers
with the matching asynchronous exception —

* ``Timeout`` for the step budget or the wall-clock deadline,
* ``HeapOverflow`` for the allocation cap —

which the machine delivers through the ordinary ``AsyncInterrupt``
path.  Nothing here is a new mechanism: a governed evaluation is
observationally identical to one interrupted by the Section 5.1 event
plan, so all the soundness guarantees (and the chaos sweep that checks
them) carry over for free.

Two deliberate choices:

* **Step-boundary enforcement.**  The allocation cap is checked
  against ``stats.allocations`` at step boundaries rather than inside
  the allocator, because the compiled backend inlines allocation; a
  step-boundary check is deterministic and identical on both backends
  (off by at most the few allocations a single step performs).
* **One-shot delivery.**  Each limit trips at most once per
  evaluation, like a signal.  A handler that catches the exception
  (``catchIO``) gets to run its recovery un-hounded — graceful
  degradation — while the machine's own fuel remains the hard
  backstop against a handler that never terminates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.excset import Exc, HEAP_OVERFLOW, TIMEOUT

#: How many steps between wall-clock reads.  Reading a monotonic clock
#: every step would dominate governed runtime; every 64th step bounds
#: deadline-detection latency to tens of microseconds of machine work.
DEADLINE_STRIDE = 64


@dataclass(frozen=True)
class GovernorLimits:
    """The per-request budget.  ``None`` disables a limit."""

    max_steps: Optional[int] = None
    max_allocations: Optional[int] = None
    deadline_seconds: Optional[float] = None


@dataclass(frozen=True)
class TripRecord:
    """What the governor did: which limit (``"steps"`` |
    ``"allocations"`` | ``"deadline"``), the exception delivered, and
    the machine state at delivery."""

    reason: str
    exc: str
    step: int
    allocations: int
    elapsed_seconds: float


class ResourceGovernor:
    """Polices one evaluation against a :class:`GovernorLimits`.

    ``clock`` is injectable (monotonic seconds) so deadline behaviour
    is testable without real waiting.  Call :meth:`start` immediately
    before evaluation begins; the machine calls :meth:`poll` once per
    step thereafter.  ``trips`` records every limit that fired.
    """

    def __init__(
        self,
        limits: GovernorLimits,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.limits = limits
        self._clock = clock
        self._started_at: Optional[float] = None
        self._steps_armed = limits.max_steps is not None
        self._allocs_armed = limits.max_allocations is not None
        self._deadline_armed = limits.deadline_seconds is not None
        self._injected: Optional[tuple] = None
        self.trips: List[TripRecord] = []

    def start(self) -> None:
        """Open the wall-clock window (idempotent)."""
        if self._started_at is None:
            self._started_at = self._clock()

    @property
    def tripped(self) -> bool:
        return bool(self.trips)

    @property
    def trip(self) -> Optional[TripRecord]:
        """The first limit that fired, or None."""
        return self.trips[0] if self.trips else None

    def elapsed(self) -> float:
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    def _fire(self, reason: str, exc: Exc, stats) -> Exc:
        self.trips.append(
            TripRecord(
                reason=reason,
                exc=exc.name,
                step=stats.steps,
                allocations=stats.allocations,
                elapsed_seconds=self.elapsed(),
            )
        )
        return exc

    def inject(self, reason: str, exc: Exc) -> None:
        """Schedule an *external* one-shot trip — the cooperative
        scheduler's preemption hook (e.g. a per-tenant step quota
        delivering ``Timeout`` mid-slice).  Routing preemptions through
        the governor instead of a side channel means they register as
        ordinary governor trips: counted, trace-spanned, and rendered
        in the response's ``trip`` block like any §5.1 limit.  Safe to
        call from another thread; delivered at the next poll."""
        self._injected = (reason, exc)

    def poll(self, machine) -> Optional[Exc]:
        """The machine-facing hook: the exception to deliver now, or
        None.  Each limit is one-shot (disarmed after firing)."""
        stats = machine.stats
        if self._injected is not None:
            reason, exc = self._injected
            self._injected = None
            return self._fire(reason, exc, stats)
        if self._steps_armed and stats.steps > self.limits.max_steps:
            self._steps_armed = False
            return self._fire("steps", TIMEOUT, stats)
        if self._allocs_armed and (
            stats.allocations > self.limits.max_allocations
        ):
            self._allocs_armed = False
            return self._fire("allocations", HEAP_OVERFLOW, stats)
        if self._deadline_armed and stats.steps % DEADLINE_STRIDE == 0:
            if self._started_at is None:
                self.start()
            elif (
                self._clock() - self._started_at
                > self.limits.deadline_seconds
            ):
                self._deadline_armed = False
                return self._fire("deadline", TIMEOUT, stats)
        return None
