"""The content-addressed program cache behind the warm path.

A served program's front-end work — parse, pattern-flatten, optionally
typecheck, and (on the compiled and super backends) lower to closures
or fused frames — is a pure function of the *source text*, the
*backend* and the *strategy*.  The
cache therefore keys entries by ``sha256(source) × backend ×
strategy`` and stores the derived artifacts:

* the flattened AST (``expr``) — or, for unparseable source, the
  parse error itself (negative caching: a client retrying a bad
  program in a loop should not re-run the parser either);
* the compiled closure tree (``code``), built lazily on first use
  against the :class:`~repro.machine.snapshot.PreludeSnapshot`'s
  frozen environment — the generated code bakes those shared cells in,
  which is exactly why it can be reused by every fork (the cells are
  immutable and machine-independent; the running machine is a call
  argument, not a capture);
* the type-check verdict (``typecheck()``), also lazy — most clients
  do not ask for it, and inference is the most expensive front-end
  stage.

Invalidation is structural: content addressing means an edited source
*is* a different key, so stale artifacts are never served — the old
entry simply ages out of the LRU bound.  ``invalidate`` exists for
explicit eviction (operational hygiene, tested), and ``clear`` drops
everything.  All operations are thread-safe under one lock; the lazy
``code``/``typecheck`` stages are double-checked so concurrent misses
compile once.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple


class CachedProgram:
    """One cache entry: source-derived artifacts, computed at most once."""

    __slots__ = (
        "key",
        "source",
        "expr",
        "error",
        "_code",
        "_verdict",
        "_lock",
    )

    def __init__(self, key, source: str, expr, error) -> None:
        self.key = key
        self.source = source
        self.expr = expr
        self.error = error  # parse/flatten failure message, or None
        self._code = None
        self._verdict: Optional[Tuple[str, str]] = None
        self._lock = threading.Lock()

    def code(self, glob, strategy):
        """The lowered program — a closure tree (``compiled``) or fused
        frame tree (``super``), built once against ``glob`` (the
        snapshot's frozen environment).  The cache key carries the
        backend, so entries for different backends never share code."""
        if self._code is None:
            with self._lock:
                if self._code is None:
                    if self.key[1] == "super":
                        from repro.machine.superop import compile_super

                        self._code = compile_super(
                            self.expr, glob, strategy
                        )
                    else:
                        from repro.machine.compile import compile_top

                        self._code = compile_top(
                            self.expr, glob, strategy
                        )
        return self._code

    def typecheck(self) -> Tuple[str, str]:
        """``("ok", type)`` or ``("type-error", message)``, memoised."""
        if self._verdict is None:
            with self._lock:
                if self._verdict is None:
                    self._verdict = self._infer()
        return self._verdict

    def _infer(self) -> Tuple[str, str]:
        from repro.api import prelude_type_env
        from repro.types.infer import TypeError_, infer_expr

        try:
            env, adts = prelude_type_env()
            t = infer_expr(self.expr, env, adts)
        except TypeError_ as err:
            return ("type-error", str(err))
        return ("ok", str(t))


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class ProgramCache:
    """A bounded, thread-safe LRU of :class:`CachedProgram` entries."""

    def __init__(
        self, backend: str, strategy_key: str, capacity: int = 256
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.backend = backend
        self.strategy_key = strategy_key
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, CachedProgram]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def key_for(self, source: str) -> tuple:
        return (source_digest(source), self.backend, self.strategy_key)

    def lookup(self, source: str) -> CachedProgram:
        """The entry for ``source``, front end run on first sight."""
        key = self.key_for(source)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry
            self.misses += 1
        # Parse outside the lock: front-end work must not serialize
        # unrelated requests.  A concurrent duplicate miss is benign —
        # last writer wins and both entries are equivalent.
        entry = self._build(key, source)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry

    @staticmethod
    def _build(key: tuple, source: str) -> CachedProgram:
        from repro.api import compile_expr

        try:
            expr = compile_expr(source)
        except Exception as err:
            return CachedProgram(key, source, None, str(err))
        return CachedProgram(key, source, expr, None)

    def invalidate(self, source: str) -> bool:
        """Drop the entry for ``source``; True if one was cached."""
        key = self.key_for(source)
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self.invalidations += 1
                return True
            return False

    def clear(self) -> int:
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            self.invalidations += n
            return n

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, source: str) -> bool:
        with self._lock:
            return self.key_for(source) in self._entries

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
