"""Resilient evaluate-as-a-service (the ``repro serve`` daemon).

The paper's Section 5.1 observes that timeouts and heap exhaustion are
best modelled as *fictitious exceptions* — ``Timeout`` and
``HeapOverflow`` are "raised" by the environment, not computed by the
semantics, so a program's denotation never mentions them and yet an
implementation may report them.  That observation is precisely the
contract a multi-tenant evaluation service needs: a per-request
resource governor can interrupt any evaluation at a step boundary and
the outcome is still *sound* — either the program's own answer, or an
asynchronous exception the client can see, never a torn value.

Layout
------
``repro.serve.governor``
    Per-request limits (steps, allocations, wall-clock deadline)
    delivered through the machine's ``AsyncInterrupt`` path.
``repro.serve.retry``
    Resilience primitives: retry with exponential backoff and seeded
    jitter, and a circuit breaker with fast rejection and Retry-After.
``repro.serve.service``
    The service itself: fresh machine per request, bounded concurrency
    with an admission queue, structured JSON outcomes, and
    CountingSink-backed metrics (the PR-1 observability layer).
``repro.serve.http``
    A stdlib-only threaded HTTP front end: ``POST /eval`` and
    ``GET /healthz``.
"""

from repro.serve.governor import GovernorLimits, ResourceGovernor, TripRecord
from repro.serve.retry import (
    CLOSED,
    CircuitBreaker,
    HALF_OPEN,
    OPEN,
    RetryPolicy,
)
from repro.serve.service import EvalService, ServiceConfig

__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "EvalService",
    "GovernorLimits",
    "HALF_OPEN",
    "OPEN",
    "ResourceGovernor",
    "RetryPolicy",
    "ServiceConfig",
    "TripRecord",
]
