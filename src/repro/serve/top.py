"""``repro top``: a live terminal dashboard for a running daemon.

Polls ``GET /healthz`` (structured counters) and ``GET /metrics``
(Prometheus exposition, parsed with
:func:`repro.obs.telemetry.parse_exposition`) and renders a compact
top-style screen: request rate, in-flight, breaker state, cache hit
ratio, governor trips and latency percentiles re-derived client-side
from the histogram bucket counts.

The renderer is a pure function of two consecutive samples —
``render_dashboard(health, families, previous)`` — so the tests drive
it with canned payloads and the polling loop is a thin shell around
injectable fetchers (no live socket needed anywhere in the suite).
"""

from __future__ import annotations

import json
import math
import sys
import time
import urllib.request
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.telemetry import parse_exposition, percentile_from_counts

__all__ = ["fetch_endpoints", "render_dashboard", "run_top"]

#: ANSI "clear screen + home" — what ``top`` itself does per frame.
CLEAR = "\x1b[2J\x1b[H"


def fetch_endpoints(
    base_url: str, timeout: float = 5.0
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """One polling round: ``(health, parsed exposition families)``."""
    with urllib.request.urlopen(
        base_url + "/healthz", timeout=timeout
    ) as response:
        health = json.loads(response.read())
    with urllib.request.urlopen(
        base_url + "/metrics", timeout=timeout
    ) as response:
        families = parse_exposition(response.read().decode("utf-8"))
    return health, families


def _histogram_series(
    families: Dict[str, Any], name: str
) -> Dict[str, Tuple[List[float], List[int]]]:
    """De-accumulated ``(bounds, counts)`` per label value (the empty
    string for an unlabelled histogram)."""
    family = families.get(name)
    if family is None:
        return {}
    grouped: Dict[str, Tuple[List[float], List[float]]] = {}
    for sample_name, labels, value in family["samples"]:
        if sample_name != name + "_bucket" or "le" not in labels:
            continue
        key = next(
            (v for k, v in sorted(labels.items()) if k != "le"), ""
        )
        bound = (
            math.inf if labels["le"] == "+Inf" else float(labels["le"])
        )
        bounds, cumulative = grouped.setdefault(key, ([], []))
        bounds.append(bound)
        cumulative.append(value)
    series = {}
    for key, (bounds, cumulative) in grouped.items():
        counts = [
            int(c - (cumulative[i - 1] if i else 0))
            for i, c in enumerate(cumulative)
        ]
        series[key] = (bounds, counts)
    return series


def _fmt_ms(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def _fmt_counts(counts: Dict[str, Any]) -> str:
    if not counts:
        return "—"
    return " · ".join(f"{k} {v}" for k, v in sorted(counts.items()))


def render_dashboard(
    health: Dict[str, Any],
    families: Dict[str, Any],
    previous: Optional[Tuple[float, Dict[str, Any]]] = None,
    now: Optional[float] = None,
    url: str = "",
) -> str:
    """One frame.  ``previous`` is ``(timestamp, health)`` from the
    last poll — when present, the requests line carries a rate."""
    total = health.get("requests_total", 0)
    rate = ""
    if previous is not None and now is not None:
        then, old_health = previous
        elapsed = now - then
        if elapsed > 0:
            delta = total - old_health.get("requests_total", 0)
            rate = f" ({delta / elapsed:+.1f}/s)"

    breaker = health.get("breaker") or {}
    cache = health.get("cache")
    batches = health.get("batches") or {}
    telemetry = health.get("telemetry") or {}
    lines = [
        f"repro top — {url or 'service'}"
        f" · backend={health.get('backend', '?')}"
        f" · {'warm' if health.get('warm') else 'cold'}"
        f" · up {health.get('uptime_seconds', 0):.1f}s",
        f"requests   total {total}{rate}"
        f"   in-flight {health.get('in_flight', 0)}",
        f"statuses   {_fmt_counts(health.get('requests', {}))}",
    ]

    request_series = _histogram_series(families, "repro_request_seconds")
    if "" in request_series:
        bounds, counts = request_series[""]
        observed = sum(counts)
        percentiles = " · ".join(
            f"{label} {_fmt_ms(percentile_from_counts(bounds, counts, q))}"
            for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99))
        )
        lines.append(f"latency    {percentiles}  ({observed} obs)")

    stage_series = _histogram_series(families, "repro_stage_seconds")
    if stage_series:
        stages = " · ".join(
            f"{stage} {_fmt_ms(percentile_from_counts(b, c, 0.5))}"
            for stage, (b, c) in sorted(stage_series.items())
        )
        lines.append(f"stages p50 {stages}")

    lines.append(
        f"breaker    {breaker.get('state', '?')}"
        f"   retries {health.get('retries_performed', 0)}"
        f"   faults {health.get('faults_injected', 0)}"
    )
    if cache is not None:
        hits = cache.get("hits", 0)
        misses = cache.get("misses", 0)
        looked = hits + misses
        ratio = f" ({hits / looked:.1%} hit)" if looked else ""
        cache_text = f"hits {hits} / misses {misses}{ratio}"
    else:
        cache_text = "off (cold path)"
    lines.append(
        f"cache      {cache_text}"
        f"   batches {batches.get('total', 0)}"
        f" (programs {batches.get('programs', 0)})"
    )
    lines.append(
        f"governor   {_fmt_counts(health.get('governor_trips', {}))}"
    )
    sched = health.get("scheduler") or {}
    if sched.get("mode") == "cooperative":
        slice_rate = ""
        if previous is not None and now is not None:
            then, old_health = previous
            elapsed = now - then
            old_slices = (old_health.get("scheduler") or {}).get(
                "slices", 0
            )
            if elapsed > 0:
                delta = sched.get("slices", 0) - old_slices
                slice_rate = f" ({delta / elapsed:+.1f}/s)"
        lines.append(
            f"scheduler  cooperative · {sched.get('workers', 0)}w ×"
            f" {sched.get('slice_steps', 0)} steps"
            f"   queue {sched.get('run_queue_depth', 0)}"
            f"   tenants {sched.get('active_tenants', 0)}"
        )
        lines.append(
            f"slices     {sched.get('slices', 0)}{slice_rate}"
            f"   preemptions {sched.get('preemptions', 0)}"
            f"   starvation "
            f"{sched.get('starvation_seconds', 0.0):.3f}s"
        )
    elif sched:
        lines.append(
            f"scheduler  threads ·"
            f" {sched.get('workers', 0)} max concurrent"
        )
    lines.append(
        f"traces     recorded {telemetry.get('traces_recorded', 0)}"
        f" · ring {telemetry.get('traces_retained', 0)}"
        f"/{telemetry.get('trace_ring', 0)}"
        + ("" if telemetry.get("enabled", True) else " · telemetry OFF")
    )
    return "\n".join(lines)


def run_top(
    url: str,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    clear: bool = True,
    fetch: Callable[
        [str], Tuple[Dict[str, Any], Dict[str, Any]]
    ] = fetch_endpoints,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
    out=None,
) -> int:
    """The polling loop.  ``iterations=None`` runs until interrupted;
    tests pass a bounded count and injected fetch/clock/sleep/out."""
    out = out if out is not None else sys.stdout
    previous: Optional[Tuple[float, Dict[str, Any]]] = None
    remaining = iterations
    while remaining is None or remaining > 0:
        try:
            health, families = fetch(url)
        except OSError as err:
            print(f"repro top: {url} unreachable: {err}", file=out)
            return 1
        now = clock()
        frame = render_dashboard(
            health, families, previous, now=now, url=url
        )
        if clear:
            out.write(CLEAR)
        out.write(frame + "\n")
        out.flush()
        previous = (now, health)
        if remaining is not None:
            remaining -= 1
            if remaining == 0:
                break
        try:
            sleep(interval)
        except KeyboardInterrupt:
            break
    return 0
