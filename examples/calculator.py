#!/usr/bin/env python
"""A calculator written in the object language, showing the paper's
three exception usage patterns (Section 2) living together:

* **disaster recovery** — division by zero / overflow anywhere in a
  formula is caught once, at the top, with ``getException``; no
  plumbing in the evaluator;
* **alternative return** — variable lookup returns ``Maybe`` (the
  explicit encoding "works beautifully" for this);
* **imprecision** — a formula with two faulty operands reports a
  strategy-dependent member of its denoted exception set.

Run:  python examples/calculator.py
"""

from repro.api import denote_source, run_io_program
from repro.machine import LeftToRight, RightToLeft

CALCULATOR = """
data Formula = Lit Int
             | Var Int
             | Plus Formula Formula
             | Minus Formula Formula
             | Times Formula Formula
             | Over Formula Formula

-- The evaluator is written with NO exception plumbing whatsoever:
-- division by zero and overflow propagate implicitly (Section 2's
-- "implicit propagation ... without requiring extra clutter").
evalF :: [(Int, Int)] -> Formula -> Int
evalF env f = case f of
                Lit n -> n
                Var k -> case lookup k env of
                           Just v -> v
                           Nothing -> error "unbound variable"
                Plus a b -> evalF env a + evalF env b
                Minus a b -> evalF env a - evalF env b
                Times a b -> evalF env a * evalF env b
                Over a b -> evalF env a `div` evalF env b

-- Disaster recovery at the top (Section 2: "most disaster-recovery
-- exception handling is done near the top of the program").
runFormula :: [(Int, Int)] -> Formula -> IO Unit
runFormula env f = do
  r <- getException (evalF env f)
  case r of
    OK v -> putLine (strAppend "  = " (showInt v))
    Bad e -> putLine (strAppend "  !! " (showException e))

env1 :: [(Int, Int)]
env1 = [(1, 10), (2, 0)]

main = do
  putLine "(x1 + 5) * 2 where x1 = 10:"
  runFormula env1 (Times (Plus (Var 1) (Lit 5)) (Lit 2))
  putLine "x1 / x2 where x2 = 0:"
  runFormula env1 (Over (Var 1) (Var 2))
  putLine "unbound variable x9:"
  runFormula env1 (Plus (Var 9) (Lit 1))
  putLine "2147483647 + 1 (overflow):"
  runFormula env1 (Plus (Lit 2147483647) (Lit 1))
"""

FAULTY_BOTH = (
    "let { ev = \\f -> case f of { Just n -> n;"
    " Nothing -> error \"Urk\" } } in"
    " ev Nothing + (1 `div` 0)"
)


def main() -> None:
    print("== The calculator (disaster recovery at the top) ==")
    result = run_io_program(CALCULATOR, typecheck=True)
    print(result.stdout)

    print("== Two faults in one formula: the denoted set ==")
    print(f"  {denote_source(FAULTY_BOTH)}")
    print()
    print("== ... and the representative each strategy reports ==")
    from repro.api import observe_source

    for strategy in (LeftToRight(), RightToLeft()):
        out = observe_source(FAULTY_BOTH, strategy=strategy)
        print(f"  {strategy.name:18s} -> {out}")


if __name__ == "__main__":
    main()
