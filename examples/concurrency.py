#!/usr/bin/env python
"""Concurrency — the extension Section 4.4 gestures at ("the
presentation scales to other extensions, such as adding concurrency to
the language", citing Concurrent Haskell).

The thematic payoff: the *scheduler quantum* is to output interleaving
what *evaluation strategy* is to exceptions — a legal implementation
choice the semantics leaves imprecise.  MVar synchronisation then plays
the role the exception *set* plays in the pure layer: whatever the
schedule, the synchronised result is fixed.

Run:  python examples/concurrency.py
"""

from repro.io.concurrent import run_concurrent_program, run_concurrent_source

RACE = (
    'forkIO (putStr "ababab" >> returnIO Unit) >> '
    "(newEmptyMVar >>= (\\m -> "
    'putStr "121212" >> '
    "forkIO (putMVar m Unit) >> takeMVar m))"
)

PIPELINE = """
-- A two-stage pipeline over MVar channels: a producer of squares and
-- a consumer folding them, synchronised cell by cell.
produce :: MVar Int -> Int -> IO Unit
produce chan n =
  if n == 0
    then returnIO Unit
    else do
      putMVar chan (n * n)
      produce chan (n - 1)

consume :: MVar Int -> Int -> Int -> IO Unit
consume chan n acc =
  if n == 0
    then putLine (strAppend "sum of squares = " (showInt acc))
    else do
      v <- takeMVar chan
      consume chan (n - 1) (acc + v)

main = do
  chan <- newEmptyMVar
  forkIO (produce chan 10)
  consume chan 10 0
"""

LAZY_CHANNEL = (
    "newEmptyMVar >>= (\\m -> "
    "forkIO (putMVar m (1 `div` 0)) >> "
    "takeMVar m >>= (\\v -> "
    "getException (v + 1) >>= (\\r -> case r of "
    "{ OK x -> putStr (showInt x); "
    "Bad e -> putStr (strAppend \"consumer caught: \" "
    "(showException e)) })))"
)


def main() -> None:
    print("== The scheduler quantum is an imprecision knob ==")
    for quantum in (1, 2, 4, 100):
        result = run_concurrent_source(RACE, quantum=quantum)
        print(f"  quantum={quantum:>3d}: {result.stdout!r}")
    print("  (same program, different legal interleavings)")
    print()

    print("== MVar synchronisation fixes the result anyway ==")
    for quantum in (1, 3, 17):
        result = run_concurrent_program(PIPELINE, quantum=quantum)
        print(f"  quantum={quantum:>3d}: {result.stdout.strip()}")
    print()

    print("== Exceptional values flow lazily through channels ==")
    result = run_concurrent_source(LAZY_CHANNEL)
    print(f"  {result.stdout}")
    print(
        "  (the producer put an unevaluated 1/0; the exception\n"
        "   surfaced at the consumer's getException — values, not\n"
        "   control flow, carry exceptions, Section 3.1)"
    )
    print()

    print("== Deadlock is a detectable bottom (cf. Section 5.2) ==")
    result = run_concurrent_source(
        "newEmptyMVar >>= (\\m -> takeMVar m)"
    )
    print(f"  status = {result.status}, reported as {result.exc}")


if __name__ == "__main__":
    main()
