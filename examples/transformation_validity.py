#!/usr/bin/env python
"""The transformation-algebra comparison (Sections 3.4 / 4.5 / 6).

Classifies the optimiser's rewrite rules under three semantics:

* **imprecise** — the paper's design (exception sets);
* **fixed-order** — the ML/FL baseline ("+ evaluates its first
  argument first");
* **naive-case** — imprecise primitives, but without Section 4.3's
  exception-finding mode for ``case``.

The output is the paper's central table in executable form: reordering
rules that are identities under the imprecise semantics become unsound
under the baselines, and the ``eta-reduce`` control (which the paper's
semantics *rightly* rejects — λx.⊥ ≠ ⊥) is caught everywhere.

Run:  python examples/transformation_validity.py
"""

from repro.baselines.fixed_order import fixed_order_ctx, naive_case_ctx
from repro.transform import (
    AppOfCase,
    BetaReduce,
    CaseOfCase,
    CaseOfKnownCon,
    CaseSwitch,
    CommonSubexpression,
    CommutePrimArgs,
    DeadAltRemoval,
    DeadLetElimination,
    EtaReduce,
    InlineLet,
    LetFloatFromApp,
    classify_transformation,
)

RULES = [
    BetaReduce(),
    InlineLet(aggressive=True),
    CommonSubexpression(),
    DeadLetElimination(),
    LetFloatFromApp(),
    CaseOfKnownCon(),
    CommutePrimArgs(),
    CaseSwitch(),
    CaseOfCase(),
    AppOfCase(),
    DeadAltRemoval(),
    EtaReduce(),  # control: must be rejected
]

SEMANTICS = [
    ("imprecise", None),
    ("fixed-order", fixed_order_ctx),
    ("naive-case", naive_case_ctx),
]


def main() -> None:
    print(
        f"{'rule':28s} " + "".join(f"{name:>14s}" for name, _ in SEMANTICS)
    )
    print("-" * 72)
    summary = {name: 0 for name, _ in SEMANTICS}
    for rule in RULES:
        row = f"{rule.name:28s} "
        for name, factory in SEMANTICS:
            report = classify_transformation(
                rule, ctx_factory=factory, semantics_name=name
            )
            row += f"{report.worst:>14s}"
            if report.valid:
                summary[name] += 1
        print(row)
    print("-" * 72)
    print(
        f"{'valid rules (of ' + str(len(RULES)) + ')':28s} "
        + "".join(f"{summary[name]:>14d}" for name, _ in SEMANTICS)
    )
    print()
    print(
        "The imprecise semantics validates every optimising rule\n"
        "(identity or refinement) with NO effect analysis; the\n"
        "fixed-order baseline loses the reordering rules, and the\n"
        "naive case rule loses case-switching (which is why the\n"
        "paper's Section 4.3 exception-finding mode exists)."
    )


if __name__ == "__main__":
    main()
