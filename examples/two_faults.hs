-- Two faults, one denotation: the observed member is a scheduling
-- accident.  `python -m repro explain examples/two_faults.hs` prints
-- the raise site and force chain for each member of the set.
main = (1 `div` 0) + error "boom"
