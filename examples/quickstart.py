#!/usr/bin/env python
"""Quickstart: the paper's headline example, end to end.

The expression ``(1 `div` 0) + error "Urk"`` (Section 3.4) denotes an
exceptional value containing a *set* of exceptions — so ``+`` stays
commutative — while any single run of the machine observes just one
member of that set, depending on the evaluation strategy (the
imprecision).  ``getException``, in the IO monad, reifies the observed
representative.

Run:  python examples/quickstart.py
"""

from repro import denote_source, observe_source, run_io_source
from repro.api import check_law_sources
from repro.machine import LeftToRight, RightToLeft, Shuffled

EXPR = '(1 `div` 0) + error "Urk"'


def main() -> None:
    flipped = 'error "Urk" + (1 `div` 0)'
    print("== The denotation (Section 4): a SET of exceptions ==")
    print(f"  [{EXPR}]")
    print(f"    = {denote_source(EXPR)}")
    print(f"  [{flipped}]")
    print(f"    = {denote_source(flipped)}")
    print()

    print("== The machine (Section 3.3): one representative ==")
    for strategy in (LeftToRight(), RightToLeft(), Shuffled(1)):
        outcome = observe_source(EXPR, strategy=strategy)
        print(f"  {strategy.name:18s} observes {outcome}")
    print()

    print("== Commutativity survives (Section 3.4) ==")
    report = check_law_sources("a + b", "b + a", name="a+b = b+a")
    print(f"  {report}")
    print()

    print("== getException in the IO monad (Section 3.5) ==")
    program = (
        "getException ((1 `div` 0) + error \"Urk\") >>= (\\r -> "
        "case r of { OK v -> putStr (showInt v); "
        "Bad e -> putStr (strAppend \"caught: \" (showException e)) })"
    )
    for strategy in (LeftToRight(), RightToLeft()):
        result = run_io_source(program, strategy=strategy)
        print(f"  {strategy.name:18s} -> {result.stdout!r}")
    print()

    print("== Laziness: exceptions hide inside structures (3.2) ==")
    print("  zipWith (div) [1,2] [1,0] has a defined spine:")
    from repro.api import compile_expr
    from repro.machine import Machine
    from repro.machine.observe import show_value
    from repro.prelude.loader import machine_env

    machine = Machine()
    value = machine.eval(
        compile_expr("zipWith (\\a b -> a `div` b) [1, 2] [1, 0]"),
        machine_env(machine),
    )
    print(f"    {show_value(value, machine)}")


if __name__ == "__main__":
    main()
