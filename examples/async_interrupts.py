#!/usr/bin/env python
"""Asynchronous exceptions (Section 5.1).

Asynchronous events — a user typing ^C, a timeout from an external
monitor, resource exhaustion — are not part of any denotation ("they
perhaps will not recur if the same program is run again"), yet
``getException`` can catch them: the rule is

    getException v  --?x-->  return (Bad x)

discarding the value ``v`` entirely, even when ``v`` is a perfectly
ordinary 42.  This script injects events at chosen machine steps and
shows (a) interception by getException, (b) abort when uncaught, and
(c) the "fascinating wrinkle": thunks abandoned by an interrupt are
*resumable*, not poisoned.

Run:  python examples/async_interrupts.py
"""

from repro.api import compile_expr, run_io_source
from repro.core.excset import CONTROL_C
from repro.io.events import control_c_at, timeout_after
from repro.machine import Cell, Machine
from repro.machine.heap import AsyncInterrupt
from repro.prelude.loader import machine_env

GUARDED = (
    "getException (sum (enumFromTo 1 5000)) >>= (\\r -> case r of "
    "{ OK v -> putStr (strAppend \"finished: \" (showInt v)); "
    "Bad e -> putStr (strAppend \"interrupted: \" (showException e)) })"
)


def main() -> None:
    print("== ^C intercepted by getException ==")
    for step in (100, 1_000, 10_000_000):
        result = run_io_source(GUARDED, events=control_c_at(step))
        print(f"  ^C at step {step:>9,}: {result.stdout!r}")
    print()

    print("== Uncaught interrupt aborts the program ==")
    result = run_io_source(
        "putStr (showInt (sum (enumFromTo 1 5000)))",
        events=control_c_at(200),
    )
    print(f"  status = {result.status}, exception = {result.exc}")
    print()

    print("== Timeout monitor (external watchdog) ==")
    looping = (
        "getException (let { spin = \\n -> spin (n + 1) } in spin 0) "
        ">>= (\\r -> case r of { OK v -> putStr \"ok\"; "
        "Bad e -> putStr (strAppend \"watchdog: \" (showException e)) })"
    )
    result = run_io_source(
        looping, fuel=50_000, timeout_as_exception=True
    )
    print(f"  {result.stdout!r}  (the loop was abandoned)")
    print()

    print("== Resumable thunks (the Section 5.1 wrinkle) ==")
    machine = Machine(event_plan={60: CONTROL_C})
    env = machine_env(machine)
    cell = Cell(compile_expr("sum (enumFromTo 1 200)"), env)
    try:
        cell.force(machine)
    except AsyncInterrupt as err:
        print(f"  first force: interrupted by {err.exc}")
    value = cell.force(machine)
    print(f"  second force (resumed): {value}")
    print(
        "  — a synchronous exception would have poisoned the thunk\n"
        "    with `raise ex`; the interrupt restored it instead."
    )


if __name__ == "__main__":
    main()
