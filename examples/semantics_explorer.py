#!/usr/bin/env python
"""Exploring the Section 4.4 transition system: enumerate EVERY
behaviour the semantics permits for a program, including the
non-deterministic getException choices and the Section 5.3
"fictitious exceptions" of ``getException loop``.

Run:  python examples/semantics_explorer.py
"""

from repro.api import denote_source
from repro.core.excset import CONTROL_C
from repro.io.transition import enumerate_outcomes

PROGRAMS = [
    (
        "deterministic echo",
        "getChar >>= (\\c -> putChar c)",
        "x",
        (),
    ),
    (
        "getException over a two-exception set",
        "getException ((1 `div` 0) + error \"Urk\") >>= (\\r -> "
        "case r of { OK v -> putChar 'k'; Bad e -> case e of "
        "{ DivideByZero -> putChar 'd'; _ -> putChar 'u' } })",
        "",
        (),
    ),
    (
        "getException loop (Section 5.3: fictitious exceptions)",
        "getException (let { w = w + 1 } in w) >>= (\\r -> "
        "case r of { OK v -> putChar 'k'; Bad e -> putChar 'b' })",
        "",
        (),
    ),
    (
        "asynchronous ^C may pre-empt a normal value",
        "getException 42 >>= (\\r -> case r of "
        "{ OK v -> putChar 'k'; Bad e -> putChar 'e' })",
        "",
        (CONTROL_C,),
    ),
]


def main() -> None:
    for title, source, stdin, events in PROGRAMS:
        print(f"== {title} ==")
        print(f"   program: {source}")
        results = enumerate_outcomes(
            denote_source(source, fuel=30_000),
            stdin=stdin,
            async_events=events,
        )
        for result in sorted(results, key=str):
            print(f"   permitted: {result}")
        print()
    print(
        "Every operational run (any strategy, any oracle) must land on\n"
        "one of the permitted behaviours — property-tested in\n"
        "tests/io/test_transition.py."
    )


if __name__ == "__main__":
    main()
