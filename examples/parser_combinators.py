#!/usr/bin/env python
"""Parser combinators — a realistic higher-order lazy workload in the
object language, with the paper's exception story on top.

A combinator parser for arithmetic expressions is written entirely in
the object language (Maybe for the "alternative return" usage, §2);
*evaluation* of the parsed tree can divide by zero, and that disaster
is caught once at the top with ``getException`` — no plumbing in
either the parser or the evaluator.

Run:  python examples/parser_combinators.py
"""

from repro.api import run_io_program

PROGRAM = r"""
-- Input is a list of tokens.
data Token = TNum Int | TPlus | TTimes | TOver | TOpen | TClose

data ExprT = Num Int | Add ExprT ExprT | Mul ExprT ExprT | Dv ExprT ExprT

-- A parser returns Maybe (result, remaining-tokens): the "alternative
-- return" pattern the paper says the explicit encoding handles
-- beautifully (Section 2).
-- parseExpr  ::= term (+ term)*
-- parseTerm  ::= factor ((* | /) factor)*
-- parseFactor ::= number | ( expr )

parseExpr :: [Token] -> Maybe (ExprT, [Token])
parseExpr ts = case parseTerm ts of
                 Nothing -> Nothing
                 Just (Tuple2 left rest) -> parseExprLoop left rest

parseExprLoop :: ExprT -> [Token] -> Maybe (ExprT, [Token])
parseExprLoop left ts =
  case ts of
    (TPlus : rest) -> case parseTerm rest of
                        Nothing -> Nothing
                        Just (Tuple2 right rest2) ->
                          parseExprLoop (Add left right) rest2
    _ -> Just (Tuple2 left ts)

parseTerm :: [Token] -> Maybe (ExprT, [Token])
parseTerm ts = case parseFactor ts of
                 Nothing -> Nothing
                 Just (Tuple2 left rest) -> parseTermLoop left rest

parseTermLoop :: ExprT -> [Token] -> Maybe (ExprT, [Token])
parseTermLoop left ts =
  case ts of
    (TTimes : rest) -> case parseFactor rest of
                         Nothing -> Nothing
                         Just (Tuple2 right rest2) ->
                           parseTermLoop (Mul left right) rest2
    (TOver : rest) -> case parseFactor rest of
                        Nothing -> Nothing
                        Just (Tuple2 right rest2) ->
                          parseTermLoop (Dv left right) rest2
    _ -> Just (Tuple2 left ts)

parseFactor :: [Token] -> Maybe (ExprT, [Token])
parseFactor ts =
  case ts of
    (TNum n : rest) -> Just (Tuple2 (Num n) rest)
    (TOpen : rest) ->
      case parseExpr rest of
        Just (Tuple2 e (TClose : rest2)) -> Just (Tuple2 e rest2)
        _ -> Nothing
    _ -> Nothing

-- The evaluator has NO exception plumbing: division by zero simply
-- propagates to whoever chooses to catch it (Section 2, "disaster
-- recovery").
evalT :: ExprT -> Int
evalT (Num n) = n
evalT (Add a b) = evalT a + evalT b
evalT (Mul a b) = evalT a * evalT b
evalT (Dv a b) = evalT a `div` evalT b

runLine :: String -> [Token] -> IO Unit
runLine label ts = do
  putStr label
  putStr " = "
  case parseExpr ts of
    Nothing -> putLine "parse error"
    Just (Tuple2 tree rest) ->
      case rest of
        (t : more) -> putLine "trailing tokens"
        Nil -> do
          r <- getException (evalT tree)
          case r of
            OK v -> putLine (showInt v)
            Bad e -> putLine (strAppend "!! " (showException e))

main = do
  runLine "1 + 2 * 3"
          [TNum 1, TPlus, TNum 2, TTimes, TNum 3]
  runLine "(1 + 2) * 3"
          [TOpen, TNum 1, TPlus, TNum 2, TClose, TTimes, TNum 3]
  runLine "10 / (3 * 0)"
          [TNum 10, TOver, TOpen, TNum 3, TTimes, TNum 0, TClose]
  runLine "10 / 0"
          [TNum 10, TOver, TNum 0]
  runLine "1 + +"
          [TNum 1, TPlus, TPlus]
"""


def main() -> None:
    result = run_io_program(PROGRAM, typecheck=True, fuel=5_000_000)
    print(result.stdout, end="")
    if not result.ok:
        print(f"*** {result.status}: {result.exc}")


if __name__ == "__main__":
    main()
