"""E13 — the compile-to-closures backend is ≥2× the AST walker.

The tentpole claim of docs/PERFORMANCE.md: lowering the flattened AST
once into slot-addressed Python closures (pruned captures, tuple
frames, baked-in global cells, an explicit work-loop for tails) makes
the lazy machine at least twice as fast on allocation- and
application-heavy workloads, while remaining *observationally
identical* — same outcomes, same counters, same trace streams.

Three measurements per workload, each on a fresh machine:

* wall time on the AST backend (best of ``_REPS``);
* wall time on the compiled backend (best of ``_REPS``);
* the full ``MachineStats`` snapshot on both, asserted equal — the
  counter contract is a hard CI gate, the speedup target is recorded
  and guarded with a CI-safe floor (machines in CI are noisy; the
  ≥2× numbers are reproduced in EXPERIMENTS.md on quiet hardware).

Workloads are the E1 shapes scaled up ~one order of magnitude so the
per-run compile cost (the compiled backend pays it on first force) is
amortised the way a real client would see it.

Regenerates: the BENCH_E13 rows.
"""

import time

import pytest

from benchmarks.conftest import bench_record, run_on_machine
from repro.api import compile_expr, compile_program
from repro.machine import BACKENDS, Machine
from repro.machine.eval import program_env
from repro.lang.ast import Program
from repro.obs import NULL_SINK
from repro.prelude.loader import machine_env

# Scaled-up E1 shapes: heavy enough that wall-clock dominates noise,
# still well under a second per run on the AST walker.
E13_WORKLOADS = {
    "fib": (
        "let { fib = \\n -> if n < 2 then n "
        "else fib (n - 1) + fib (n - 2) } in fib 17"
    ),
    "list-pipeline": (
        "sum (map (\\x -> x * x) (filter (\\x -> x `mod` 2 == 0) "
        "(enumFromTo 1 1600)))"
    ),
    "tree-fold": (
        "let { build = \\n -> if n == 0 then Leaf 1 "
        "else Node (build (n - 1)) (build (n - 1)) ; "
        "total = \\t -> case t of { Leaf v -> v; "
        "Node l r -> total l + total r } } in total (build 9)"
    ),
}

TREE_DECLS = "data Tree = Leaf Int | Node Tree Tree\n"

# Best-of-N wall time: the minimum is the standard low-noise estimator
# for a deterministic computation.
_REPS = 3

# The CI gate is deliberately below the ≥2× claim: shared runners
# gyrate by tens of percent, and a perf bar that flakes gets deleted.
# The claim itself is recorded in the BENCH_E13 rows and EXPERIMENTS.md.
_CI_SPEEDUP_FLOOR = 1.3


def _compile(name: str):
    source = E13_WORKLOADS[name]
    if "Leaf" in source:
        return compile_program(TREE_DECLS + "main = " + source)
    return compile_expr(source)


def _run_once(compiled, backend: str):
    """One fresh-machine run; returns (seconds, stats_dict, value)."""
    machine = Machine(backend=backend)
    if isinstance(compiled, Program):
        env = program_env(compiled, machine, machine_env(machine))
        start = time.perf_counter()
        value = env["main"].force(machine)
        elapsed = time.perf_counter() - start
    else:
        env = machine_env(machine)
        start = time.perf_counter()
        value = machine.eval(compiled, env)
        elapsed = time.perf_counter() - start
    return elapsed, machine.stats.snapshot().as_dict(), value


def _best_of(compiled, backend: str):
    best, stats, value = _run_once(compiled, backend)
    for _ in range(_REPS - 1):
        elapsed, again, _v = _run_once(compiled, backend)
        assert again == stats  # deterministic: every rep, same counters
        best = min(best, elapsed)
    return best, stats, value


class TestCompiledSpeedup:
    @pytest.mark.parametrize("name", sorted(E13_WORKLOADS))
    def test_speedup_and_counter_parity(self, name):
        compiled = _compile(name)
        ast_time, ast_stats, ast_value = _best_of(compiled, "ast")
        c_time, c_stats, c_value = _best_of(compiled, "compiled")

        # The counter contract: not "close", *equal* — every step,
        # allocation, force, raise, prim-op, and the force-depth
        # high-water mark.
        assert c_stats == ast_stats

        # Both backends land on the same WHNF (ints here).
        assert str(ast_value) == str(c_value)

        speedup = ast_time / c_time if c_time > 0 else float("inf")
        bench_record(
            "E13",
            workload=name,
            ast_seconds=round(ast_time, 6),
            compiled_seconds=round(c_time, 6),
            speedup=round(speedup, 2),
            steps=ast_stats["steps"],
            allocations=ast_stats["allocations"],
            thunks_forced=ast_stats["thunks_forced"],
            target="≥2× (CI floor 1.3×)",
        )
        assert speedup >= _CI_SPEEDUP_FLOOR, (
            f"{name}: compiled backend only {speedup:.2f}× faster "
            f"(ast {ast_time:.4f}s vs compiled {c_time:.4f}s)"
        )


class TestCompiledTracingIsFreeWhenOff:
    """E1b extended to the compiled backend: no sink and the null sink
    run the identical step sequence — the tick fast path is one
    attribute load and one branch on both backends."""

    @pytest.mark.parametrize("name", sorted(E13_WORKLOADS))
    def test_null_sink_step_parity(self, name):
        compiled = _compile(name)
        _t, bare, _v = _run_once(compiled, "compiled")
        machine = Machine(backend="compiled", sink=NULL_SINK)
        assert machine._tracing is False
        if isinstance(compiled, Program):
            env = program_env(compiled, machine, machine_env(machine))
            env["main"].force(machine)
        else:
            machine.eval(compiled, machine_env(machine))
        assert machine.stats.snapshot().as_dict() == bare


@pytest.mark.benchmark(group="E13-compiled-backend")
@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_backends(benchmark, backend, workload):
    """pytest-benchmark timings for both backends over the shared E1
    workload set (the E13 set is sized for one-shot wall-clock runs;
    these rows give the calibrated per-op comparison)."""
    from benchmarks.conftest import compile_workload

    compiled = compile_workload(workload)
    benchmark(lambda: run_on_machine(compiled, backend=backend))
