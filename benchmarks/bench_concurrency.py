"""Concurrency-extension benchmarks (the Section 4.4 closing remark).

Shapes asserted:

* the scheduler adds only bounded overhead over the sequential
  executor on single-threaded programs (pay-as-you-go again);
* MVar-synchronised results are schedule-invariant while raw output
  interleavings are not — the concurrency analogue of "the observed
  exception varies, the denoted set does not".
"""

import pytest

from repro.api import compile_expr, run_io_source
from repro.io.concurrent import (
    Scheduler,
    run_concurrent_program,
    run_concurrent_source,
)
from repro.machine import Cell, Machine
from repro.prelude.loader import machine_env

SEQUENTIAL = (
    "mapM_ (\\n -> putStr (showInt n)) (enumFromTo 1 30)"
)

PIPELINE = """
produce :: MVar Int -> Int -> IO Unit
produce chan n =
  if n == 0 then returnIO Unit
  else do
    putMVar chan (n * n)
    produce chan (n - 1)

consume :: MVar Int -> Int -> Int -> IO Unit
consume chan n acc =
  if n == 0 then putStr (showInt acc)
  else do
    v <- takeMVar chan
    consume chan (n - 1) (acc + v)

main = do
  chan <- newEmptyMVar
  forkIO (produce chan 25)
  consume chan 25 0
"""


class TestShapes:
    def test_single_thread_parity_with_sequential_executor(self):
        sequential = run_io_source(SEQUENTIAL)
        concurrent = run_concurrent_source(SEQUENTIAL)
        assert concurrent.ok
        assert concurrent.stdout == sequential.stdout

    def test_scheduler_step_overhead_bounded(self):
        machine_a = Machine()
        from repro.io.run import IOExecutor

        executor = IOExecutor(machine=machine_a)
        executor.run_cell(
            Cell(compile_expr(SEQUENTIAL), machine_env(machine_a))
        )
        machine_b = Machine()
        scheduler = Scheduler(machine=machine_b)
        scheduler.run_cell(
            Cell(compile_expr(SEQUENTIAL), machine_env(machine_b))
        )
        # Same machine work modulo a small constant factor.
        ratio = machine_b.stats.steps / machine_a.stats.steps
        assert ratio < 1.5

    def test_synchronised_result_schedule_invariant(self):
        outs = {
            run_concurrent_program(PIPELINE, quantum=q).stdout
            for q in (1, 2, 5, 50)
        }
        assert outs == {"5525"}

    def test_unsynchronised_interleavings_vary(self):
        race = (
            'forkIO (mapM_ (\\c -> putChar c) [\'a\', \'b\', \'c\'] '
            ">> returnIO Unit) >> "
            "(newEmptyMVar >>= (\\m -> "
            "mapM_ (\\c -> putChar c) ['1', '2', '3'] >> "
            "forkIO (putMVar m Unit) >> takeMVar m))"
        )
        outs = {
            run_concurrent_source(race, quantum=q).stdout
            for q in (1, 2, 100)
        }
        assert len(outs) >= 2
        assert all(sorted(o) == sorted("abc123") for o in outs)


@pytest.mark.benchmark(group="concurrency")
def test_bench_sequential_executor(benchmark):
    expr = compile_expr(SEQUENTIAL)

    def run():
        from repro.io.run import IOExecutor

        machine = Machine()
        return IOExecutor(machine=machine).run_cell(
            Cell(expr, machine_env(machine))
        )

    benchmark(run)


@pytest.mark.benchmark(group="concurrency")
def test_bench_scheduler_single_thread(benchmark):
    expr = compile_expr(SEQUENTIAL)

    def run():
        machine = Machine()
        return Scheduler(machine=machine).run_cell(
            Cell(expr, machine_env(machine))
        )

    benchmark(run)


@pytest.mark.benchmark(group="concurrency")
@pytest.mark.parametrize("quantum", [1, 10])
def test_bench_pipeline(benchmark, quantum):
    benchmark(
        lambda: run_concurrent_program(PIPELINE, quantum=quantum)
    )
