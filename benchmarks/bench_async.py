"""E8 — asynchronous exceptions (Section 5.1).

Regenerates: (a) the interception table — events injected at different
points are caught by ``getException`` or abort the program; (b) the
pay-as-you-go cost of arming the event machinery (an event plan that
never fires must cost only the per-step schedule check); (c) timeout
watchdog behaviour.
"""

import pytest

from repro.api import compile_expr, run_io_source
from repro.core.excset import CONTROL_C, TIMEOUT
from repro.io.events import control_c_at, timeout_after
from repro.machine import Machine
from repro.prelude.loader import machine_env

GUARDED = (
    "getException (sum (enumFromTo 1 2000)) >>= (\\r -> case r of "
    "{ OK v -> putStr \"ok\"; Bad e -> putStr (showException e) })"
)
UNGUARDED = "putStr (showInt (sum (enumFromTo 1 2000)))"
PURE = compile_expr("sum (enumFromTo 1 2000)")


class TestInterception:
    @pytest.mark.parametrize("step", [50, 500, 5_000])
    def test_event_during_evaluation_is_caught(self, step):
        result = run_io_source(GUARDED, events=control_c_at(step))
        assert result.ok
        assert result.stdout == "ControlC"

    def test_event_after_completion_is_unobservable(self):
        result = run_io_source(
            GUARDED, events=control_c_at(100_000_000)
        )
        assert result.stdout == "ok"

    @pytest.mark.parametrize("step", [50, 500])
    def test_unguarded_program_aborts(self, step):
        result = run_io_source(UNGUARDED, events=control_c_at(step))
        assert result.status == "exception"
        assert result.exc == CONTROL_C

    def test_timeout_watchdog(self):
        looping = (
            "getException (let { spin = \\n -> spin (n + 1) } in spin 0)"
            " >>= (\\r -> case r of { OK v -> putStr \"ok\"; "
            "Bad e -> putStr (showException e) })"
        )
        result = run_io_source(
            looping, fuel=30_000, timeout_as_exception=True
        )
        assert result.stdout == "Timeout"


class TestPayAsYouGo:
    def test_step_counts_identical_without_firing(self):
        plain = Machine()
        plain.eval(PURE, machine_env(plain))
        armed = Machine(event_plan={10**9: CONTROL_C})
        armed.eval(PURE, machine_env(armed))
        assert plain.stats.steps == armed.stats.steps


@pytest.mark.benchmark(group="E8-async")
def test_bench_no_event_plan(benchmark):
    def run():
        machine = Machine()
        return machine.eval(PURE, machine_env(machine))

    benchmark(run)


@pytest.mark.benchmark(group="E8-async")
def test_bench_armed_but_silent(benchmark):
    def run():
        machine = Machine(event_plan={10**9: CONTROL_C})
        return machine.eval(PURE, machine_env(machine))

    benchmark(run)


@pytest.mark.benchmark(group="E8-async")
def test_bench_intercepted_interrupt(benchmark):
    def run():
        return run_io_source(GUARDED, events=control_c_at(500))

    benchmark(run)
