"""Ablations over the design choices DESIGN.md calls out.

A1 — exception-finding exploration cost scales with alternative count
     and branch cost, but only on exceptional scrutinees (the price of
     validating case-switching — what the paper trades for precision).
A2 — the collecting non-deterministic semantics (the §3.4 baseline) is
     exponential in choice points, while the imprecise denotation is
     computed in one pass: the quantitative argument for sets.
A3 — law-checking battery size vs discriminating power: the small
     battery already finds every classification the large one does on
     the corpus (so E3's runtime is not an artifact of under-testing).
"""

import pytest

from repro.api import compile_expr
from repro.baselines.nondet import collect_outcomes
from repro.core.denote import DenoteContext, denote
from repro.core.laws import DEFAULT_BATTERY, check_law
from repro.lang.parser import parse_expr


def _guarded_case(n_alts: int) -> str:
    alts = "; ".join(f"{i} -> sumTo {i * 3}" for i in range(n_alts))
    return (
        "let { sumTo = \\n -> if n == 0 then 0 "
        "else n + sumTo (n - 1) } in "
        f"case (1 `div` 0) of {{ {alts}; _ -> 0 }}"
    )


def _choice_tower(n: int) -> str:
    """n nested binary choice points, each with two exceptions."""
    expr = "raise Overflow + raise DivideByZero"
    for _ in range(n - 1):
        expr = f"({expr}) + raise PatternMatchFail"
    return expr


class TestA1ExplorationScaling:
    def test_cost_scales_with_alternatives(self):
        costs = {}
        for n in (2, 8):
            ctx = DenoteContext(fuel=2_000_000)
            denote(compile_expr(_guarded_case(n)), {}, ctx)
            costs[n] = ctx.steps
        assert costs[8] > costs[2] * 2

    def test_normal_scrutinee_flat(self):
        def steps(n):
            source = _guarded_case(n).replace("(1 `div` 0)", "1")
            ctx = DenoteContext(fuel=2_000_000)
            denote(compile_expr(source), {}, ctx)
            return ctx.steps

        # Selecting alternative 1 costs the same regardless of how
        # many other alternatives exist.
        assert abs(steps(8) - steps(2)) < 30


class TestA2CollectingExplosion:
    def test_runs_grow_with_choice_points(self):
        import repro.baselines.nondet as nondet

        counts = {}
        for n in (2, 4, 6):
            expr = compile_expr(_choice_tower(n))
            # count distinct machine runs by instrumenting prefixes
            seen = []
            original = nondet.ChoiceStrategy

            class Counting(original):  # type: ignore[misc]
                def __init__(self, choices):
                    super().__init__(choices)
                    seen.append(tuple(choices))

            nondet.ChoiceStrategy = Counting
            try:
                collect_outcomes(expr, max_runs=512)
            finally:
                nondet.ChoiceStrategy = original
            counts[n] = len(seen)
        assert counts[4] > counts[2]
        assert counts[6] > counts[4]

    def test_imprecise_denotation_single_pass(self):
        for n in (2, 4, 6):
            ctx = DenoteContext(fuel=100_000)
            value = denote(compile_expr(_choice_tower(n)), {}, ctx)
            # One pass, and the set contains every outcome the
            # collecting semantics enumerates.
            outcomes = collect_outcomes(
                compile_expr(_choice_tower(n)), max_runs=512
            )
            names = {o[1] for o in outcomes}
            denoted = {e.name for e in value.excs.finite_members()}
            assert names <= denoted


class TestA3BatteryAdequacy:
    LAWS = [
        ("a + b", "b + a"),
        ("(\\x -> x + x) a", "a + a"),
        ("seq a b", "b"),
        ('error "This"', 'error "That"'),
    ]

    def test_small_battery_matches_large(self):
        small = DEFAULT_BATTERY[:6]
        for lhs_src, rhs_src in self.LAWS:
            lhs, rhs = parse_expr(lhs_src), parse_expr(rhs_src)
            full = check_law(lhs, rhs, battery=DEFAULT_BATTERY)
            trimmed = check_law(lhs, rhs, battery=small)
            # The small battery may fail to find a counterexample the
            # full one finds, but must never *invent* one.
            if trimmed.verdict == "unsound":
                assert full.verdict == "unsound"

    def test_full_battery_strictly_more_discriminating(self):
        # error "This" vs "That" needs the distinct-UserError entries.
        tiny = DEFAULT_BATTERY[:3]
        lhs = parse_expr("a")
        rhs = parse_expr("a")
        report = check_law(lhs, rhs, battery=tiny)
        assert report.verdict == "identity"


@pytest.mark.benchmark(group="ablation-exploration")
@pytest.mark.parametrize("n_alts", [2, 4, 8])
def test_bench_exploration_cost(benchmark, n_alts):
    expr = compile_expr(_guarded_case(n_alts))

    def run():
        return denote(expr, {}, DenoteContext(fuel=2_000_000))

    benchmark(run)


@pytest.mark.benchmark(group="ablation-collecting")
@pytest.mark.parametrize("n_choices", [2, 4, 6])
def test_bench_collecting_semantics(benchmark, n_choices):
    expr = compile_expr(_choice_tower(n_choices))
    benchmark(lambda: collect_outcomes(expr, max_runs=512))


@pytest.mark.benchmark(group="ablation-collecting")
@pytest.mark.parametrize("n_choices", [2, 4, 6])
def test_bench_imprecise_one_pass(benchmark, n_choices):
    expr = compile_expr(_choice_tower(n_choices))
    benchmark(lambda: denote(expr, {}, DenoteContext(fuel=100_000)))
