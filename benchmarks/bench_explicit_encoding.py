"""E2 — the explicit ``ExVal`` encoding "forces a test-and-propagate at
every call site, with a substantial cost in code size and speed"
(Section 2.2).

Regenerates the comparison rows: for each workload,
  native machine  vs  ExVal-encoded program (same machine)
reporting code size (AST nodes), machine steps, allocations, and
wall-clock time.  The *shape* the paper predicts: the encoding loses on
every axis, by a substantial factor.

Step and allocation counts are read from the observability layer (a
counting sink attached to the machine) — the same contract
``repro profile`` reports through — and each measured row is recorded
for ``BENCH_E2.json``.
"""

import pytest

from benchmarks.conftest import WORKLOADS, bench_record, run_on_machine
from repro.api import compile_expr
from repro.encoding import encode_expr
from repro.lang.ast import expr_size
from repro.machine import Machine
from repro.obs import ALLOC, STEP, CountingSink
from repro.prelude.loader import machine_env

# Expression-shaped, prelude-free workloads (the encodable fragment).
ENCODABLE = {
    "sum-recursive": (
        "let { go = \\n -> if n == 0 then 0 else n + go (n - 1) } "
        "in go 300"
    ),
    "fib": (
        "let { fib = \\n -> if n < 2 then n "
        "else fib (n - 1) + fib (n - 2) } in fib 13"
    ),
    "nested-arith": (
        "let { f = \\a b -> (a + b) * (a - b) } "
        "in f 3 4 + f 5 6 + f 7 8 + f (f 1 2) (f 3 4)"
    ),
    "case-heavy": (
        "let { classify = \\n -> case n `mod` 3 of "
        "{ 0 -> 1; 1 -> 2; _ -> 3 } ; "
        "go = \\n -> if n == 0 then 0 "
        "else classify n + go (n - 1) } in go 200"
    ),
}


def _measure(expr):
    """Evaluate ``expr`` (prelude-free) with a counting sink; the sink
    is the measurement interface."""
    sink = CountingSink()
    machine = Machine(sink=sink)
    machine.eval(expr, {})
    return sink


def _native(expr):
    return _measure(expr)


def _encoded(expr):
    return _measure(expr)


@pytest.fixture(params=sorted(ENCODABLE), ids=sorted(ENCODABLE))
def encodable(request):
    return request.param


class TestEncodingCosts:
    @pytest.mark.parametrize("name", sorted(ENCODABLE))
    def test_code_size_blowup(self, name):
        expr = compile_expr(ENCODABLE[name])
        encoded = encode_expr(expr)
        ratio = expr_size(encoded) / expr_size(expr)
        bench_record(
            "E2",
            workload=name,
            axis="code-size",
            native=expr_size(expr),
            encoded=expr_size(encoded),
            ratio=round(ratio, 2),
        )
        assert ratio > 2.0, f"{name}: size ratio only {ratio:.2f}"

    @pytest.mark.parametrize("name", sorted(ENCODABLE))
    def test_step_count_blowup(self, name):
        expr = compile_expr(ENCODABLE[name])
        encoded = encode_expr(expr)
        native = _native(expr)
        enc = _encoded(encoded)
        ratio = enc.count(STEP) / native.count(STEP)
        bench_record(
            "E2",
            workload=name,
            axis="steps",
            native=native.count(STEP),
            encoded=enc.count(STEP),
            ratio=round(ratio, 2),
        )
        assert ratio > 1.4, f"{name}: step ratio only {ratio:.2f}"

    @pytest.mark.parametrize("name", sorted(ENCODABLE))
    def test_allocation_blowup(self, name):
        expr = compile_expr(ENCODABLE[name])
        encoded = encode_expr(expr)
        native = _native(expr)
        enc = _encoded(encoded)
        bench_record(
            "E2",
            workload=name,
            axis="allocations",
            native=native.count(ALLOC),
            encoded=enc.count(ALLOC),
        )
        assert enc.count(ALLOC) > native.count(ALLOC)

    @pytest.mark.parametrize("name", sorted(ENCODABLE))
    def test_same_answer(self, name):
        from repro.machine.values import VCon, VInt

        expr = compile_expr(ENCODABLE[name])
        encoded = encode_expr(expr)
        native_value = Machine().eval(expr, {})
        machine = Machine()
        encoded_value = machine.eval(encoded, {})
        assert isinstance(encoded_value, VCon)
        assert encoded_value.name == "OK"
        assert (
            encoded_value.args[0].force(machine).value
            == native_value.value
        )


@pytest.mark.benchmark(group="E2-encoding")
def test_bench_native(benchmark, encodable):
    expr = compile_expr(ENCODABLE[encodable])
    benchmark(lambda: Machine().eval(expr, {}))


@pytest.mark.benchmark(group="E2-encoding")
def test_bench_exval_encoded(benchmark, encodable):
    expr = encode_expr(compile_expr(ENCODABLE[encodable]))
    benchmark(lambda: Machine().eval(expr, {}))
