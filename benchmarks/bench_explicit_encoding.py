"""E2 — the explicit ``ExVal`` encoding "forces a test-and-propagate at
every call site, with a substantial cost in code size and speed"
(Section 2.2).

Regenerates the comparison rows: for each workload,
  native machine  vs  ExVal-encoded program (same machine)
reporting code size (AST nodes), machine steps, allocations, and
wall-clock time.  The *shape* the paper predicts: the encoding loses on
every axis, by a substantial factor.
"""

import pytest

from benchmarks.conftest import WORKLOADS, run_on_machine
from repro.api import compile_expr
from repro.encoding import encode_expr
from repro.lang.ast import expr_size
from repro.machine import Machine
from repro.prelude.loader import machine_env

# Expression-shaped, prelude-free workloads (the encodable fragment).
ENCODABLE = {
    "sum-recursive": (
        "let { go = \\n -> if n == 0 then 0 else n + go (n - 1) } "
        "in go 300"
    ),
    "fib": (
        "let { fib = \\n -> if n < 2 then n "
        "else fib (n - 1) + fib (n - 2) } in fib 13"
    ),
    "nested-arith": (
        "let { f = \\a b -> (a + b) * (a - b) } "
        "in f 3 4 + f 5 6 + f 7 8 + f (f 1 2) (f 3 4)"
    ),
    "case-heavy": (
        "let { classify = \\n -> case n `mod` 3 of "
        "{ 0 -> 1; 1 -> 2; _ -> 3 } ; "
        "go = \\n -> if n == 0 then 0 "
        "else classify n + go (n - 1) } in go 200"
    ),
}


def _native(expr):
    machine = Machine()
    machine.eval(expr, {})
    return machine


def _encoded(expr):
    machine = Machine()
    machine.eval(expr, {})
    return machine


@pytest.fixture(params=sorted(ENCODABLE), ids=sorted(ENCODABLE))
def encodable(request):
    return request.param


class TestEncodingCosts:
    @pytest.mark.parametrize("name", sorted(ENCODABLE))
    def test_code_size_blowup(self, name):
        expr = compile_expr(ENCODABLE[name])
        encoded = encode_expr(expr)
        ratio = expr_size(encoded) / expr_size(expr)
        assert ratio > 2.0, f"{name}: size ratio only {ratio:.2f}"

    @pytest.mark.parametrize("name", sorted(ENCODABLE))
    def test_step_count_blowup(self, name):
        expr = compile_expr(ENCODABLE[name])
        encoded = encode_expr(expr)
        native = _native(expr)
        enc = _encoded(encoded)
        ratio = enc.stats.steps / native.stats.steps
        assert ratio > 1.4, f"{name}: step ratio only {ratio:.2f}"

    @pytest.mark.parametrize("name", sorted(ENCODABLE))
    def test_allocation_blowup(self, name):
        expr = compile_expr(ENCODABLE[name])
        encoded = encode_expr(expr)
        native = _native(expr)
        enc = _encoded(encoded)
        assert enc.stats.allocations > native.stats.allocations

    @pytest.mark.parametrize("name", sorted(ENCODABLE))
    def test_same_answer(self, name):
        from repro.machine.values import VCon, VInt

        expr = compile_expr(ENCODABLE[name])
        encoded = encode_expr(expr)
        native_value = Machine().eval(expr, {})
        machine = Machine()
        encoded_value = machine.eval(encoded, {})
        assert isinstance(encoded_value, VCon)
        assert encoded_value.name == "OK"
        assert (
            encoded_value.args[0].force(machine).value
            == native_value.value
        )


@pytest.mark.benchmark(group="E2-encoding")
def test_bench_native(benchmark, encodable):
    expr = compile_expr(ENCODABLE[encodable])
    benchmark(lambda: Machine().eval(expr, {}))


@pytest.mark.benchmark(group="E2-encoding")
def test_bench_exval_encoded(benchmark, encodable):
    expr = encode_expr(compile_expr(ENCODABLE[encodable]))
    benchmark(lambda: Machine().eval(expr, {}))
