"""E1 — "programs that don't invoke exceptions ... run with unchanged
efficiency" (Sections 2.3 and 3.3).

The stack-trimming implementation makes the exception machinery
pay-as-you-go: arming a top-level ``getException`` handler around a
pure workload must not change the workload's step count, and its
wall-clock cost must be within noise.  Contrast with the explicit
encoding (E2), where every call site pays.

Step counts are read from the observability layer (``step`` events
into a counting sink) rather than from ``Machine.stats`` — the sink
is the measurement contract, and E1's numbers double as a check that
the tracing decoration reports exactly what the machine does.  The
companion claim "tracing is free when *off*" is E1b
(``bench_trace_overhead.py``).

Regenerates: the efficiency claim's two rows —
  (a) bare workload        vs  (b) getException-guarded workload
with identical machine step counts.
"""

import pytest

from benchmarks.conftest import (
    WORKLOADS,
    bench_record,
    compile_workload,
    run_on_machine,
    run_with_sink,
)
from repro.api import compile_expr
from repro.io.run import IOExecutor
from repro.lang.ast import Program
from repro.machine import Cell, Machine
from repro.obs import STEP, CountingSink
from repro.prelude.loader import machine_env

# The handler is pure overhead: it wraps the WHOLE workload once.
GUARDED_TEMPLATE = (
    "getException ({body}) >>= (\\r -> returnIO r)"
)


def _run_bare(compiled):
    _value, _machine, sink = run_with_sink(compiled)
    return sink.count(STEP)


def _guarded_steps(body: str) -> int:
    """Steps of the getException-guarded form, via the sink API."""
    expr = compile_expr(GUARDED_TEMPLATE.format(body=body))
    sink = CountingSink()
    machine = Machine()
    env = machine_env(machine)
    machine.reset_stats()
    machine.attach_sink(sink)
    executor = IOExecutor(machine=machine)
    result = executor.run_cell(Cell(expr, env))
    assert result.ok
    return sink.count(STEP)


def _run_guarded(name):
    body = WORKLOADS[name]
    if "Leaf" in body:
        pytest.skip("guarded variant uses expression workloads only")
    return _guarded_steps(body)


class TestStepParity:
    """The structural half of the claim: step counts differ only by
    the constant handler overhead (a handful of steps), independent of
    workload size."""

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_constant_overhead(self, name):
        if "Leaf" in WORKLOADS[name]:
            pytest.skip("expression workloads only")
        bare = _run_bare(compile_workload(name))
        guarded = _run_guarded(name)
        overhead = guarded - bare
        bench_record(
            "E1",
            workload=name,
            bare_steps=bare,
            guarded_steps=guarded,
            overhead=overhead,
        )
        assert 0 <= overhead <= 25, (
            f"{name}: guard overhead {overhead} steps is not constant"
        )

    def test_overhead_independent_of_workload_size(self):
        go = "let { go = \\n -> if n == 0 then 0 else n + go (n - 1) } in "
        overheads = []
        for label in ("go 50", "go 800"):
            bare = _run_bare(compile_expr(go + label))
            guarded = _guarded_steps(go + label)
            overheads.append(guarded - bare)
        bench_record(
            "E1",
            workload="go 50 vs go 800",
            overhead_small=overheads[0],
            overhead_big=overheads[1],
        )
        assert overheads[0] == overheads[1]

    def test_sink_counts_agree_with_machine_stats(self):
        """The decoration is faithful: the sink-reported step count is
        the machine's own counter, for every workload."""
        for name in sorted(WORKLOADS):
            _value, machine, sink = run_with_sink(compile_workload(name))
            assert sink.count(STEP) == machine.stats.steps


@pytest.mark.benchmark(group="E1-no-cost")
def test_bench_bare_workload(benchmark, workload):
    compiled = compile_workload(workload)
    benchmark(lambda: run_on_machine(compiled))


@pytest.mark.benchmark(group="E1-no-cost")
def test_bench_guarded_workload(benchmark, workload):
    if "Leaf" in WORKLOADS[workload]:
        pytest.skip("expression workloads only")
    expr = compile_expr(
        GUARDED_TEMPLATE.format(body=WORKLOADS[workload])
    )

    def run():
        machine = Machine()
        executor = IOExecutor(machine=machine)
        return executor.run_cell(Cell(expr, machine_env(machine)))

    benchmark(run)
