"""E1 — "programs that don't invoke exceptions ... run with unchanged
efficiency" (Sections 2.3 and 3.3).

The stack-trimming implementation makes the exception machinery
pay-as-you-go: arming a top-level ``getException`` handler around a
pure workload must not change the workload's step count, and its
wall-clock cost must be within noise.  Contrast with the explicit
encoding (E2), where every call site pays.

Regenerates: the efficiency claim's two rows —
  (a) bare workload        vs  (b) getException-guarded workload
with identical machine step counts.
"""

import pytest

from benchmarks.conftest import WORKLOADS, compile_workload, run_on_machine
from repro.api import compile_expr
from repro.io.run import IOExecutor
from repro.lang.ast import Program
from repro.machine import Cell, Machine
from repro.machine.eval import program_env
from repro.prelude.loader import machine_env

# The handler is pure overhead: it wraps the WHOLE workload once.
GUARDED_TEMPLATE = (
    "getException ({body}) >>= (\\r -> returnIO r)"
)


def _run_bare(compiled):
    value, machine = run_on_machine(compiled)
    return machine.stats.steps


def _run_guarded(name):
    body = WORKLOADS[name]
    if "Leaf" in body:
        pytest.skip("guarded variant uses expression workloads only")
    expr = compile_expr(GUARDED_TEMPLATE.format(body=body))
    machine = Machine()
    executor = IOExecutor(machine=machine)
    result = executor.run_cell(Cell(expr, machine_env(machine)))
    assert result.ok
    return machine.stats.steps


class TestStepParity:
    """The structural half of the claim: step counts differ only by
    the constant handler overhead (a handful of steps), independent of
    workload size."""

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_constant_overhead(self, name):
        if "Leaf" in WORKLOADS[name]:
            pytest.skip("expression workloads only")
        bare = _run_bare(compile_workload(name))
        guarded = _run_guarded(name)
        overhead = guarded - bare
        assert 0 <= overhead <= 25, (
            f"{name}: guard overhead {overhead} steps is not constant"
        )

    def test_overhead_independent_of_workload_size(self):
        small = compile_expr(
            "let { go = \\n -> if n == 0 then 0 else n + go (n - 1) } "
            "in go 50"
        )
        big = compile_expr(
            "let { go = \\n -> if n == 0 then 0 else n + go (n - 1) } "
            "in go 800"
        )
        overheads = []
        for body, label in ((small, "go 50"), (big, "go 800")):
            bare_steps = _run_bare(body)
            machine = Machine()
            guarded = compile_expr(
                GUARDED_TEMPLATE.format(
                    body="let { go = \\n -> if n == 0 then 0 "
                    "else n + go (n - 1) } in "
                    + label
                )
            )
            executor = IOExecutor(machine=machine)
            executor.run_cell(Cell(guarded, machine_env(machine)))
            overheads.append(machine.stats.steps - bare_steps)
        assert overheads[0] == overheads[1]


@pytest.mark.benchmark(group="E1-no-cost")
def test_bench_bare_workload(benchmark, workload):
    compiled = compile_workload(workload)
    benchmark(lambda: run_on_machine(compiled))


@pytest.mark.benchmark(group="E1-no-cost")
def test_bench_guarded_workload(benchmark, workload):
    if "Leaf" in WORKLOADS[workload]:
        pytest.skip("expression workloads only")
    expr = compile_expr(
        GUARDED_TEMPLATE.format(body=WORKLOADS[workload])
    )

    def run():
        machine = Machine()
        executor = IOExecutor(machine=machine)
        return executor.run_cell(Cell(expr, machine_env(machine)))

    benchmark(run)
