"""Shared benchmark workloads and helpers.

The paper has no numeric tables; each bench file regenerates one of
its *claims* (experiment index in DESIGN.md, results recorded in
EXPERIMENTS.md).  Workloads are small programs in the object language,
chosen so each benchmark finishes in well under a second while still
exercising the relevant machinery thousands of times.
"""

from __future__ import annotations

import pytest

from repro.api import compile_expr, compile_program
from repro.machine import Machine
from repro.machine.eval import program_env
from repro.prelude.loader import machine_env

# Pure (exception-free in practice) workloads for E1/E2/E4.
WORKLOADS = {
    "sum-recursive": (
        "let { go = \\n -> if n == 0 then 0 else n + go (n - 1) } "
        "in go 400"
    ),
    "fib": (
        "let { fib = \\n -> if n < 2 then n "
        "else fib (n - 1) + fib (n - 2) } in fib 15"
    ),
    "list-pipeline": (
        "sum (map (\\x -> x * x) (filter (\\x -> x `mod` 2 == 0) "
        "(enumFromTo 1 200)))"
    ),
    "tree-fold": (
        "let { build = \\n -> if n == 0 then Leaf 1 "
        "else Node (build (n - 1)) (build (n - 1)) ; "
        "total = \\t -> case t of { Leaf v -> v; "
        "Node l r -> total l + total r } } in total (build 7)"
    ),
}

TREE_DECLS = "data Tree = Leaf Int | Node Tree Tree\n"


def compile_workload(name: str):
    source = WORKLOADS[name]
    if "Leaf" in source:
        # tree workloads need the Tree declaration: compile as program
        program = compile_program(TREE_DECLS + "main = " + source)
        return program
    return compile_expr(source)


def run_on_machine(compiled, machine=None):
    """Evaluate a compiled workload; returns (value, machine)."""
    from repro.lang.ast import Expr, Program

    if machine is None:
        machine = Machine()
    if isinstance(compiled, Program):
        env = program_env(compiled, machine, machine_env(machine))
        value = env["main"].force(machine)
    else:
        value = machine.eval(compiled, machine_env(machine))
    return value, machine


@pytest.fixture(params=sorted(WORKLOADS), ids=sorted(WORKLOADS))
def workload(request):
    return request.param
