"""Shared benchmark workloads and helpers.

The paper has no numeric tables; each bench file regenerates one of
its *claims* (experiment index in DESIGN.md, results recorded in
EXPERIMENTS.md).  Workloads are small programs in the object language,
chosen so each benchmark finishes in well under a second while still
exercising the relevant machinery thousands of times.

Counts are read through the observability layer (a
:class:`repro.obs.CountingSink` attached to the machine) rather than
by reaching into ``Machine.stats`` — the benches consume the same
metrics contract external tooling does (docs/OBSERVABILITY.md).  Each
claim-shape test records its measured row with :func:`bench_record`;
when ``REPRO_BENCH_DIR`` is set the session writes one
``BENCH_<experiment>.json`` file per experiment, the machine-readable
companions to the EXPERIMENTS.md tables.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

import pytest

from repro.api import compile_expr, compile_program
from repro.machine import Machine
from repro.machine.eval import program_env
from repro.obs import CountingSink
from repro.prelude.loader import machine_env

# Pure (exception-free in practice) workloads for E1/E2/E4.
WORKLOADS = {
    "sum-recursive": (
        "let { go = \\n -> if n == 0 then 0 else n + go (n - 1) } "
        "in go 400"
    ),
    "fib": (
        "let { fib = \\n -> if n < 2 then n "
        "else fib (n - 1) + fib (n - 2) } in fib 15"
    ),
    "list-pipeline": (
        "sum (map (\\x -> x * x) (filter (\\x -> x `mod` 2 == 0) "
        "(enumFromTo 1 200)))"
    ),
    "tree-fold": (
        "let { build = \\n -> if n == 0 then Leaf 1 "
        "else Node (build (n - 1)) (build (n - 1)) ; "
        "total = \\t -> case t of { Leaf v -> v; "
        "Node l r -> total l + total r } } in total (build 7)"
    ),
}

TREE_DECLS = "data Tree = Leaf Int | Node Tree Tree\n"


def compile_workload(name: str):
    source = WORKLOADS[name]
    if "Leaf" in source:
        # tree workloads need the Tree declaration: compile as program
        program = compile_program(TREE_DECLS + "main = " + source)
        return program
    return compile_expr(source)


def run_on_machine(compiled, machine=None, backend="ast"):
    """Evaluate a compiled workload; returns (value, machine)."""
    from repro.lang.ast import Expr, Program

    if machine is None:
        machine = Machine(backend=backend)
    if isinstance(compiled, Program):
        env = program_env(compiled, machine, machine_env(machine))
        value = env["main"].force(machine)
    else:
        value = machine.eval(compiled, machine_env(machine))
    return value, machine


def run_with_sink(compiled, strategy=None, fuel: int = 2_000_000, backend="ast"):
    """Evaluate a compiled workload on a machine with a counting sink
    attached; returns (value, machine, sink).

    The prelude environment is built first and the counters reset, so
    the sink's ``step``/``alloc`` counts cover the workload alone —
    the same scoping ``repro profile`` uses.
    """
    from repro.lang.ast import Program

    sink = CountingSink()
    machine = Machine(strategy=strategy, fuel=fuel, backend=backend)
    base = machine_env(machine)
    if isinstance(compiled, Program):
        env = program_env(compiled, machine, base)
        machine.reset_stats()
        machine.attach_sink(sink)
        value = env["main"].force(machine)
    else:
        machine.reset_stats()
        machine.attach_sink(sink)
        value = machine.eval(compiled, base)
    return value, machine, sink


# -- BENCH_*.json records ----------------------------------------------

_BENCH_RECORDS: Dict[str, List[dict]] = {}


def bench_record(experiment: str, **row) -> None:
    """Record one measured row for ``BENCH_<experiment>.json``."""
    _BENCH_RECORDS.setdefault(experiment, []).append(row)


def pytest_sessionfinish(session, exitstatus):
    out_dir = os.environ.get("REPRO_BENCH_DIR")
    if not out_dir or not _BENCH_RECORDS:
        return
    os.makedirs(out_dir, exist_ok=True)
    for experiment, rows in sorted(_BENCH_RECORDS.items()):
        path = os.path.join(out_dir, f"BENCH_{experiment}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(
                {"experiment": experiment, "rows": rows},
                fh,
                indent=2,
                default=str,
            )
            fh.write("\n")


@pytest.fixture(params=sorted(WORKLOADS), ids=sorted(WORKLOADS))
def workload(request):
    return request.param
