"""E7 — why case needs exception-finding mode (Section 4.3).

"The rather curious semantics is necessary, though, to validate
transformations that change the order of evaluation, such as that
given at the beginning of Section 4."

Regenerates: the case-switching law verdicts under exception-finding
vs naive case semantics, together with the measured cost of the mode:
exploring alternatives on an exceptional scrutinee costs fuel that the
naive rule does not pay — the "price" side of the design.
"""

import pytest

from repro.baselines.fixed_order import naive_case_ctx
from repro.core.denote import DenoteContext, denote
from repro.core.laws import PAIR_BATTERY, check_law
from repro.lang.match import flatten_case_patterns
from repro.lang.parser import parse_expr

LHS = flatten_case_patterns(
    parse_expr(
        "case x of { Tuple2 a b -> case y of { Tuple2 s t -> a + s } }"
    )
)
RHS = flatten_case_patterns(
    parse_expr(
        "case y of { Tuple2 s t -> case x of { Tuple2 a b -> a + s } }"
    )
)
BATTERIES = {"x": PAIR_BATTERY, "y": PAIR_BATTERY}

# A case whose scrutinee is exceptional and whose branches are cheap /
# expensive to explore (the cost knob).
CHEAP_BRANCHES = flatten_case_patterns(
    parse_expr(
        "case raise DivideByZero of { True -> 1; False -> 2 }"
    )
)
COSTLY_BRANCHES = flatten_case_patterns(
    parse_expr(
        "case raise DivideByZero of "
        "{ True -> sum99 0; False -> sum99 0 }"
    )
)


def _sum99_env(ctx):
    from repro.core.denote import program_env
    from repro.lang.match import flatten_program
    from repro.lang.parser import parse_program

    program = flatten_program(
        parse_program(
            "sum99 acc = sumGo 99 acc\n"
            "sumGo n acc = if n == 0 then acc "
            "else sumGo (n - 1) (acc + n)"
        )
    )
    return program_env(program, ctx)


class TestLawVerdicts:
    def test_exception_finding_validates_case_switch(self):
        report = check_law(
            LHS, RHS, name="case-switch", var_batteries=BATTERIES
        )
        assert report.verdict == "identity"

    def test_naive_mode_breaks_case_switch(self):
        report = check_law(
            LHS,
            RHS,
            name="case-switch-naive",
            var_batteries=BATTERIES,
            ctx_factory=naive_case_ctx,
        )
        assert report.verdict == "unsound"

    def test_counterexample_is_the_papers(self):
        report = check_law(
            LHS,
            RHS,
            name="case-switch-naive",
            var_batteries=BATTERIES,
            ctx_factory=naive_case_ctx,
        )
        # Both scrutinees exceptional; the order determines which
        # exception is "encountered" — exactly Section 4's opener.
        ce = report.counterexample
        assert ce is not None
        from repro.core.domains import Bad

        bads = [v for v in ce.values() if isinstance(v, Bad)]
        assert len(bads) >= 1


class TestExplorationCost:
    """The mode's price: branch exploration burns fuel proportional to
    branch cost, but ONLY when the scrutinee is exceptional."""

    def _steps(self, expr, ctx_factory, with_env=False):
        ctx = ctx_factory()
        env = _sum99_env(ctx) if with_env else {}
        denote(expr, env, ctx)
        return ctx.steps

    def test_exploration_costs_fuel(self):
        finding = self._steps(
            COSTLY_BRANCHES, lambda: DenoteContext(fuel=200_000), True
        )
        naive = self._steps(
            COSTLY_BRANCHES, lambda: naive_case_ctx(200_000), True
        )
        assert finding > naive * 5

    def test_normal_scrutinee_pays_nothing_extra(self):
        normal = flatten_case_patterns(
            parse_expr("case True of { True -> 1; False -> 2 }")
        )
        finding = self._steps(
            normal, lambda: DenoteContext(fuel=10_000)
        )
        naive = self._steps(normal, lambda: naive_case_ctx(10_000))
        assert finding == naive

    def test_cheap_branches_cheap_exploration(self):
        finding = self._steps(
            CHEAP_BRANCHES, lambda: DenoteContext(fuel=10_000)
        )
        assert finding < 20


@pytest.mark.benchmark(group="E7-case-mode")
def test_bench_exception_finding_case(benchmark):
    def run():
        ctx = DenoteContext(fuel=200_000)
        env = _sum99_env(ctx)
        return denote(COSTLY_BRANCHES, env, ctx)

    benchmark(run)


@pytest.mark.benchmark(group="E7-case-mode")
def test_bench_naive_case(benchmark):
    def run():
        ctx = naive_case_ctx(200_000)
        env = _sum99_env(ctx)
        return denote(COSTLY_BRANCHES, env, ctx)

    benchmark(run)


@pytest.mark.benchmark(group="E7-case-mode")
def test_bench_law_check(benchmark):
    benchmark(
        lambda: check_law(
            LHS, RHS, name="case-switch", var_batteries=BATTERIES
        )
    )
