"""E20 — cooperative scheduler fairness: one hot tenant, N light ones.

The claim of the cooperative scheduler (docs/SERVING.md): a tenant
that floods the service with expensive work cannot starve the other
tenants, because deficit round-robin grants machine-step slices per
*tenant*, not per request.  Measured here as the serving-layer
counterpart of the paper's schedule-independence story:

* **solo** — the light tenants alone: their baseline p50/p99;
* **contended (cooperative)** — the same light workload while a hot
  tenant continuously submits step-capped spinners: light-tenant
  latency must stay in the same territory (the acceptance story is
  "p99 within a small multiple of solo"; the CI floor below is far
  looser because shared runners gyrate);
* **contended (threads)** — the identical contended workload on the
  thread-per-request mode, for comparison (the threaded pool serves
  whoever holds a thread; fairness is luck, and the recorded rows
  show the difference rather than gate it);
* **parity** — one light request per mode, bodies compared
  field-for-field with ids normalised: ``divergences`` is a
  deterministic metric gated at zero.

Jain's fairness index is computed over per-tenant completion
throughput during the contended window (1.0 = perfectly fair); like
every latency field it is derived from wall-clock behaviour, so it is
reported, not gated (see ``benchcompare._is_wallclock``).

Regenerates: the BENCH_E20 rows.
"""

import statistics
import threading
import time

from benchmarks.conftest import bench_record
from repro.serve import EvalService, ServiceConfig

#: The light tenants' workload: a couple of thousand steps.
LIGHT = "sum (map (\\x -> x * x) (enumFromTo 1 15))"
#: The hot tenant's workload: spins until the step governor trips it
#: (deterministic: every hot request costs exactly ``max_steps``).
HOT = "let { w = \\u -> w u } in w ()"

_LIGHT_TENANTS = 3
_LIGHT_REQUESTS = 8  # per tenant
_MAX_STEPS = 40_000

#: CI floor: contended light-tenant p99 within this multiple of solo.
#: The acceptance story ("within 2×") lives in the recorded rows and
#: EXPERIMENTS.md; the gate is loose enough to survive noisy runners.
_CI_P99_CEILING = 25.0


def _config(scheduler: str) -> ServiceConfig:
    return ServiceConfig(
        scheduler=scheduler,
        workers=2,
        slice_steps=2_000,
        max_steps=_MAX_STEPS,
        max_allocations=None,
        deadline_seconds=None,
        retries=0,
        max_concurrency=32,
        queue_depth=32,
        breaker_threshold=1_000_000,
        telemetry=False,
    )


def _percentile(times, q):
    if not times:
        return 0.0
    ordered = sorted(times)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


def _light_latencies(service, tenants=_LIGHT_TENANTS):
    """Run every light tenant's request stream concurrently; returns
    (all latencies, per-tenant completion counts)."""
    latencies = {t: [] for t in range(tenants)}

    def worker(tenant):
        for _ in range(_LIGHT_REQUESTS):
            start = time.perf_counter()
            status, body, _ = service.handle(
                {
                    "expr": LIGHT,
                    "tenant": f"light-{tenant}",
                    "priority": "interactive",
                }
            )
            latencies[tenant].append(time.perf_counter() - start)
            assert status == 200 and body["status"] == "value", body

    threads = [
        threading.Thread(target=worker, args=(t,))
        for t in range(tenants)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return [x for ts in latencies.values() for x in ts]


def _jain(throughputs):
    """Jain's fairness index: (Σx)² / (n·Σx²); 1.0 = perfectly fair."""
    xs = [x for x in throughputs if x > 0]
    if not xs:
        return 0.0
    return sum(xs) ** 2 / (len(xs) * sum(x * x for x in xs))


class TestSchedulerFairness:
    def test_light_tenants_survive_hot_tenant(self):
        # -- solo baseline (cooperative, light tenants only) ----------
        solo = EvalService(_config("cooperative"))
        try:
            solo.handle({"expr": LIGHT})  # prime snapshot/cache
            solo_times = _light_latencies(solo)
        finally:
            solo.close()
        solo_p50 = statistics.median(solo_times)
        solo_p99 = _percentile(solo_times, 0.99)
        bench_record(
            "E20",
            scenario="solo-light",
            mode="cooperative",
            light_requests=len(solo_times),
            light_p50_seconds=round(solo_p50, 6),
            light_p99_seconds=round(solo_p99, 6),
        )

        # -- contended, per mode --------------------------------------
        results = {}
        for mode in ("cooperative", "threads"):
            service = EvalService(_config(mode))
            stop = threading.Event()
            hot_served = [0]

            def flood():
                while not stop.is_set():
                    status, body, _ = service.handle(
                        {
                            "expr": HOT,
                            "tenant": "hog",
                            "priority": "batch",
                        }
                    )
                    assert status == 200, body
                    assert body["status"] == "resource-exhausted"
                    hot_served[0] += 1

            try:
                service.handle({"expr": LIGHT})  # prime
                hog = threading.Thread(target=flood)
                window = time.perf_counter()
                hog.start()
                times = _light_latencies(service)
                stop.set()
                hog.join()
                window = time.perf_counter() - window
            finally:
                service.close()

            p50 = statistics.median(times)
            p99 = _percentile(times, 0.99)
            throughputs = [
                (len(times) / _LIGHT_TENANTS) / window
            ] * _LIGHT_TENANTS + [hot_served[0] / window]
            results[mode] = (p50, p99)
            bench_record(
                "E20",
                scenario="contended",
                mode=mode,
                light_requests=len(times),
                hot_served_wall=hot_served[0],
                light_p50_seconds=round(p50, 6),
                light_p99_seconds=round(p99, 6),
                p99_vs_solo_ratio=round(p99 / max(solo_p99, 1e-9), 2),
                jain_fairness=round(_jain(throughputs), 3),
                target="light p99 within 2× solo (cooperative)",
            )

        coop_p99 = results["cooperative"][1]
        assert coop_p99 <= _CI_P99_CEILING * max(solo_p99, 1e-4), (
            f"hot tenant starved the light ones: contended p99 "
            f"{coop_p99:.4f}s vs solo {solo_p99:.4f}s"
        )

    def test_mode_parity_is_deterministic(self):
        """One light request per mode: byte-identical bodies (ids
        normalised) — the deterministic row the benchcompare gate
        holds at zero."""
        bodies = {}
        for mode in ("cooperative", "threads"):
            service = EvalService(_config(mode))
            try:
                status, body, _ = service.handle(
                    {"expr": LIGHT, "tenant": "alice"}
                )
                assert status == 200, body
                body.pop("request_id")
                body.pop("trace_id")
                bodies[mode] = body
            finally:
                service.close()
        divergences = (
            0 if bodies["cooperative"] == bodies["threads"] else 1
        )
        bench_record(
            "E20",
            scenario="parity",
            divergences=divergences,
            steps=bodies["cooperative"]["stats"]["steps"],
        )
        assert divergences == 0, bodies
