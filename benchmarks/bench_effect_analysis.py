"""E6 — the effect-analysis comparison (Section 6).

"Compilers often attempt to infer the set of possible exceptions with a
view to lifting these restrictions, but their power of inference is
limited; for example, they must be pessimistic across module boundaries
... We claim that our design retains almost all useful opportunities
for transformation ... No separate effect analysis is required."

Regenerates: for a corpus of realistic programs, the fraction of
reordering sites (strict binary primitives and call-by-value
candidates) that

  * the imprecise semantics licenses:      always 100%
  * the fixed-order + effect analysis licenses: a small fraction

The benchmark times the analysis itself.
"""

import pytest

from repro.analysis.effects import (
    program_effect_env,
    transformable_sites,
)
from repro.api import compile_expr, compile_program
from repro.prelude.loader import prelude_program

CORPUS = {
    "arith-loop": (
        "let { go = \\n -> if n == 0 then 0 else n + go (n - 1) } "
        "in go 100"
    ),
    "pipeline": (
        "sum (map (\\x -> x * x + 1) (enumFromTo 1 50))"
    ),
    "pure-comparisons": (
        "case 1 == 2 of { True -> 1 < 2; False -> 3 <= 4 }"
    ),
    "mixed": (
        "let { safe = \\b -> b == 0 ; "
        "risky = \\a b -> a `div` b } "
        "in case safe 0 of { True -> 1; False -> risky 10 2 }"
    ),
}


def _ratio(expr):
    sites = transformable_sites(expr)
    if not sites:
        return None
    enabled = sum(1 for s in sites if s.safe_under_fixed_order)
    return len(sites), enabled


class TestEnabledSiteRatios:
    def test_imprecise_always_100_percent(self):
        # By construction: the imprecise semantics needs no analysis —
        # every site is legal to reorder (E3 proves the legality).
        for name, source in CORPUS.items():
            sites = transformable_sites(compile_expr(source))
            assert len(sites) > 0, name

    @pytest.mark.parametrize(
        "name", sorted(set(CORPUS) - {"pure-comparisons"})
    )
    def test_fixed_order_is_pessimistic(self, name):
        # (pure-comparisons is excluded: it is the deliberately
        # analysable control — literal comparisons are provably safe,
        # so the analysis rightly licenses all of them.)
        total, enabled = _ratio(compile_expr(CORPUS[name]))
        assert enabled < total, (
            f"{name}: effect analysis licensed everything?"
        )

    def test_arithmetic_sites_essentially_all_blocked(self):
        total, enabled = _ratio(compile_expr(CORPUS["arith-loop"]))
        assert enabled / total < 0.25

    def test_comparison_only_code_fares_better(self):
        total, enabled = _ratio(
            compile_expr(CORPUS["pure-comparisons"])
        )
        assert enabled / total > 0.5

    def test_prelude_wide_ratio(self):
        # Over the whole prelude: the aggregate fraction the baseline
        # can reorder.  The paper's "almost all" vs "limited" contrast.
        prelude = prelude_program()
        env = program_effect_env(prelude)
        total = 0
        enabled = 0
        for _name, rhs in prelude.binds:
            for site in transformable_sites(rhs, env):
                total += 1
                enabled += site.safe_under_fixed_order
        assert total > 100
        ratio = enabled / total
        assert ratio < 0.35, f"prelude enabled ratio {ratio:.2f}"

    def test_print_table(self, capsys):
        with capsys.disabled():
            print()
            print(
                f"{'program':20s}{'sites':>8s}{'fixed-order':>14s}"
                f"{'imprecise':>12s}"
            )
            for name, source in sorted(CORPUS.items()):
                total, enabled = _ratio(compile_expr(source))
                print(
                    f"{name:20s}{total:>8d}"
                    f"{enabled / total:>13.0%}{1.0:>12.0%}"
                )


@pytest.mark.benchmark(group="E6-effects")
def test_bench_effect_analysis_prelude(benchmark):
    prelude = prelude_program()

    def run():
        env = program_effect_env(prelude)
        return [
            transformable_sites(rhs, env)
            for _name, rhs in prelude.binds
        ]

    benchmark(run)


@pytest.mark.benchmark(group="E6-effects")
def test_bench_site_discovery(benchmark):
    exprs = [compile_expr(src) for src in CORPUS.values()]
    benchmark(lambda: [transformable_sites(e) for e in exprs])
