"""E1b — tracing is free when off (the observability analogue of E1).

E1 reproduces the paper's "exceptions are free when unused" claim
(§2.3/§3.3).  The observability layer (docs/OBSERVABILITY.md) makes
the same pay-as-you-go promise about itself: a machine with no sink —
or the null sink, which is classified as not-live and compiles to the
same single boolean guard — executes the *identical* step sequence as
the seed machine.  The acceptance bar is overhead ≤ 1% machine steps;
the design delivers exactly 0 (the counters are untouched by the
decoration), which these tests assert as equality, workload by
workload.

Also asserted: a *live* counting sink still does not perturb the
semantics or the counters (decorations observe, never interfere) and
reports exactly the machine's own numbers.

Regenerates: the BENCH_E1b rows — per workload, steps without a sink,
with the null sink, and with a counting sink attached.
"""

import pytest

from benchmarks.conftest import (
    WORKLOADS,
    bench_record,
    compile_workload,
    run_on_machine,
    run_with_sink,
)
from repro.machine import BACKENDS, Machine
from repro.machine.eval import program_env
from repro.lang.ast import Program
from repro.obs import ALLOC, FORCE, NULL_SINK, RAISE, STEP, CountingSink
from repro.obs.provenance import ProvenanceRecorder
from repro.prelude.loader import machine_env


def _steps(compiled, sink=None, backend="ast", provenance=False):
    machine = Machine(sink=sink, backend=backend)
    if provenance:
        machine.attach_provenance(ProvenanceRecorder())
    if isinstance(compiled, Program):
        env = program_env(compiled, machine, machine_env(machine))
        env["main"].force(machine)
    else:
        machine.eval(compiled, machine_env(machine))
    return machine.stats.steps


class TestTracingIsFreeWhenOff:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_null_sink_step_parity(self, name):
        """No sink vs null sink: identical step counts (0% overhead,
        within the ≤ 1% acceptance bar by construction)."""
        compiled = compile_workload(name)
        bare = _steps(compiled)
        null = _steps(compiled, sink=NULL_SINK)
        bench_record(
            "E1b",
            workload=name,
            bare_steps=bare,
            null_sink_steps=null,
            overhead_pct=round(100.0 * (null - bare) / bare, 4),
        )
        assert null == bare

    def test_null_sink_is_not_live(self):
        machine = Machine(sink=NULL_SINK)
        assert machine._tracing is False
        machine.attach_sink(None)
        assert machine._tracing is False

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_counting_sink_does_not_perturb(self, name):
        """A live sink observes; it must not change what it observes."""
        compiled = compile_workload(name)
        bare = _steps(compiled)
        counted = _steps(compiled, sink=CountingSink())
        assert counted == bare


class TestProvenanceIsFreeWhenOff:
    """The provenance/attribution extension (docs/OBSERVABILITY.md,
    'Provenance & attribution') inherits the E1b contract on BOTH
    machine backends: with no recorder attached — the default — the
    step sequence is the seed's, exactly; and even with a recorder the
    counters are untouched (records are metadata, not cost)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_provenance_off_step_parity(self, name, backend):
        compiled = compile_workload(name)
        bare = _steps(compiled, backend=backend)
        null = _steps(compiled, sink=NULL_SINK, backend=backend)
        bench_record(
            "E1b",
            workload=name,
            backend=backend,
            axis="provenance-off",
            bare_steps=bare,
            null_sink_steps=null,
            overhead_pct=round(100.0 * (null - bare) / bare, 4),
        )
        assert null == bare

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_recorder_does_not_perturb_counters(self, name, backend):
        compiled = compile_workload(name)
        bare = _steps(compiled, backend=backend)
        recorded = _steps(compiled, backend=backend, provenance=True)
        assert recorded == bare

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_span_profiler_does_not_perturb_counters(self, name, backend):
        from repro.obs import SpanProfiler

        compiled = compile_workload(name)
        bare = _steps(compiled, backend=backend)
        profiled = _steps(
            compiled, sink=SpanProfiler(), backend=backend
        )
        assert profiled == bare

    def test_provenance_off_by_default(self):
        for backend in BACKENDS:
            assert Machine(backend=backend)._prov is None


class TestSinkFaithfulness:
    """The counting sink reports exactly the machine's own counters —
    the 'decoration does not lie' half of the contract."""

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_counts_match_stats(self, name):
        _value, machine, sink = run_with_sink(compile_workload(name))
        stats = machine.stats
        assert sink.count(STEP) == stats.steps
        assert sink.count(ALLOC) == stats.allocations
        assert sink.count(FORCE) == stats.thunks_forced
        assert sink.count(RAISE) == stats.raises


@pytest.mark.benchmark(group="E1b-trace-overhead")
def test_bench_no_sink(benchmark, workload):
    compiled = compile_workload(workload)
    benchmark(lambda: run_on_machine(compiled))


@pytest.mark.benchmark(group="E1b-trace-overhead")
def test_bench_null_sink(benchmark, workload):
    compiled = compile_workload(workload)
    benchmark(lambda: run_on_machine(compiled, Machine(sink=NULL_SINK)))


@pytest.mark.benchmark(group="E1b-trace-overhead")
def test_bench_counting_sink(benchmark, workload):
    compiled = compile_workload(workload)
    benchmark(
        lambda: run_on_machine(compiled, Machine(sink=CountingSink()))
    )
