"""E4 — strictness analysis, "the crucial transformation" (Section 3.4).

Call-by-need builds long chains of unevaluated accumulator thunks; the
strictness-driven call-by-value rewrite evaluates them at the call,
flattening the chain.  Under the imprecise semantics the rewrite is a
checked identity (see tests/transform) even though it *reorders*
exception discovery; under the fixed-order baseline it is unsound
unless the argument provably cannot raise — which, with checked
arithmetic, is essentially never (E6).

Regenerates: the claim's measurement rows — max thunk-chain depth and
wall-clock, lazy vs strictified, on accumulator loops.
"""

import pytest

from repro.analysis.strictness import analyse_program
from repro.api import compile_program
from repro.machine import Machine
from repro.machine.eval import program_env
from repro.machine.values import VInt
from repro.prelude.loader import machine_env
from repro.transform.pipeline import O0, O2_strict

ACCUMULATOR = """
go :: Int -> Int -> Int
go n acc = if n == 0 then acc else go (n - 1) (acc + n)

main = go {N} 0
"""

SUM_LEN = """
walk :: [Int] -> Int -> Int
walk xs acc = case xs of
                Nil -> acc
                (y:ys) -> walk ys (acc + y)

main = walk (enumFromTo 1 {N}) 0
"""


def _prepare(source, n, strict):
    program = compile_program(source.replace("{N}", str(n)))
    if strict:
        env = analyse_program(program)
        program = O2_strict(env).optimise_program(program)
    return program


def _run(program):
    machine = Machine()
    env = program_env(program, machine, machine_env(machine))
    value = env["main"].force(machine)
    return value, machine


class TestStrictnessPayoff:
    @pytest.mark.parametrize("source", [ACCUMULATOR, SUM_LEN],
                             ids=["go-loop", "list-walk"])
    def test_same_answer(self, source):
        lazy_value, _ = _run(_prepare(source, 300, strict=False))
        strict_value, _ = _run(_prepare(source, 300, strict=True))
        assert isinstance(lazy_value, VInt)
        assert lazy_value.value == strict_value.value

    def test_thunk_chain_flattened(self):
        _, lazy = _run(_prepare(ACCUMULATOR, 500, strict=False))
        _, strict = _run(_prepare(ACCUMULATOR, 500, strict=True))
        # Lazy: the accumulator chain forces ~N deep at the end.
        # Strict: each addition is forced at the call, O(1) chain.
        assert lazy.stats.max_force_depth > 400
        assert strict.stats.max_force_depth < 50
        ratio = lazy.stats.max_force_depth / strict.stats.max_force_depth
        assert ratio > 10

    def test_depth_grows_linearly_only_when_lazy(self):
        depths = {}
        for n in (100, 400):
            _, lazy = _run(_prepare(ACCUMULATOR, n, strict=False))
            _, strict = _run(_prepare(ACCUMULATOR, n, strict=True))
            depths[n] = (
                lazy.stats.max_force_depth,
                strict.stats.max_force_depth,
            )
        lazy_growth = depths[400][0] - depths[100][0]
        strict_growth = depths[400][1] - depths[100][1]
        assert lazy_growth > 250
        assert strict_growth <= 2

    def test_analysis_found_the_strict_argument(self):
        program = compile_program(ACCUMULATOR.replace("{N}", "10"))
        env = analyse_program(program)
        assert env["go"] == (True, True)


@pytest.mark.benchmark(group="E4-strictness")
@pytest.mark.parametrize("strict", [False, True], ids=["lazy", "strict"])
def test_bench_accumulator(benchmark, strict):
    program = _prepare(ACCUMULATOR, 400, strict=strict)
    benchmark(lambda: _run(program))


@pytest.mark.benchmark(group="E4-strictness")
@pytest.mark.parametrize("strict", [False, True], ids=["lazy", "strict"])
def test_bench_list_walk(benchmark, strict):
    program = _prepare(SUM_LEN, 300, strict=strict)
    benchmark(lambda: _run(program))
