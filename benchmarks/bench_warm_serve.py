"""E16 — the warm serving path: snapshot forks + the program cache.

The tentpole claim of docs/SERVING.md: serving a repeat program from
the warm path (fork an immutable prelude snapshot, reuse the cached
front-end artifacts) is an order of magnitude faster than the cold
construction (rebuild and re-freeze the prelude heap, re-parse the
source, re-compile on the compiled backend) — while the response
bodies stay **byte-identical**.  Both halves are measured here:

* per-request p50 latency against a warm (``warm=True``) and a cold
  (``warm=False``) :class:`~repro.serve.service.EvalService`, same
  repeat-program workload, same limits;
* a field-for-field comparison of the warm and cold response bodies —
  outcome, rendered value, the full machine-counter block, the
  trace-event totals.  ``divergences`` is recorded as a deterministic
  metric, so the gate fails if it ever leaves zero.

The wall-clock fields (``*_seconds``, ``speedup``) are reported, not
gated; the CI assertion uses a floor far under the recorded numbers
because shared runners gyrate.  The ≥10× claim itself lives in the
BENCH_E16 rows and EXPERIMENTS.md, on the setup-dominated workloads
where the warm path's savings are the whole request; ``sumsq`` is the
eval-heavy control whose speedup is bounded by evaluation cost.

Regenerates: the BENCH_E16 rows.
"""

import statistics
import time

import pytest

from benchmarks.conftest import bench_record
from repro.serve import EvalService, ServiceConfig

#: Repeat-program workloads.  ``arith``/``zipwith`` are dominated by
#: per-request setup (the warm path's target); ``sumsq`` spends its
#: time in evaluation, bounding what any serving-layer cache can save.
E16_WORKLOADS = {
    "arith": "1 + 2 * 3 - 4",
    "zipwith": (
        "sum (zipWith (\\a b -> a * b) "
        "(enumFromTo 1 8) (enumFromTo 1 8))"
    ),
    "sumsq": "sum (map (\\x -> x * x) (enumFromTo 1 50))",
}

#: Workloads the ≥10× compiled-backend claim is made (and gated) on.
_HEADLINE = ("arith", "zipwith")

_WARM_REQUESTS = 15
_COLD_REQUESTS = 7

#: CI floor for the headline compiled rows — far below the recorded
#: ≥10×, far above noise (a flaking perf bar gets deleted).
_CI_SPEEDUP_FLOOR = 3.0


def _service(backend: str, warm: bool) -> EvalService:
    return EvalService(
        ServiceConfig(backend=backend, warm=warm, retries=0)
    )


def _p50(service: EvalService, source: str, requests: int) -> float:
    times = []
    for _ in range(requests):
        start = time.perf_counter()
        status, body, _retry = service.handle({"expr": source})
        times.append(time.perf_counter() - start)
        assert status == 200, body
    return statistics.median(times)


class TestWarmServeSpeedup:
    @pytest.mark.parametrize("backend", ["ast", "compiled"])
    @pytest.mark.parametrize("name", sorted(E16_WORKLOADS))
    def test_p50_speedup_and_body_parity(self, backend, name):
        source = E16_WORKLOADS[name]
        warm = _service(backend, warm=True)
        cold = _service(backend, warm=False)

        # Parity first (also primes the warm cache/snapshot, so the
        # timed loop below measures the steady state a repeat-program
        # client sees): warm and cold must produce byte-identical
        # bodies — same outcome, counters, event totals.
        _, warm_body, _ = warm.handle({"expr": source})
        _, cold_body, _ = cold.handle({"expr": source})
        divergences = 0 if warm_body == cold_body else 1
        assert divergences == 0, (warm_body, cold_body)

        warm_p50 = _p50(warm, source, _WARM_REQUESTS)
        cold_p50 = _p50(cold, source, _COLD_REQUESTS)
        speedup = (
            cold_p50 / warm_p50 if warm_p50 > 0 else float("inf")
        )

        headline = backend == "compiled" and name in _HEADLINE
        bench_record(
            "E16",
            workload=name,
            backend=backend,
            warm_p50_seconds=round(warm_p50, 6),
            cold_p50_seconds=round(cold_p50, 6),
            speedup=round(speedup, 1),
            divergences=divergences,
            steps=warm_body["stats"]["steps"],
            cache_hits=warm.health()["cache"]["hits"],
            target="≥10× (compiled, setup-dominated)"
            if headline
            else "reported",
        )

        # The warm path must never lose, anywhere; the headline rows
        # must clear the CI floor.
        assert speedup > 1.0, (
            f"{name}/{backend}: warm p50 {warm_p50:.6f}s not faster "
            f"than cold {cold_p50:.6f}s"
        )
        if headline:
            assert speedup >= _CI_SPEEDUP_FLOOR, (
                f"{name}/{backend}: warm path only {speedup:.1f}× "
                f"(warm {warm_p50:.6f}s vs cold {cold_p50:.6f}s)"
            )

    @pytest.mark.parametrize("backend", ["ast", "compiled"])
    def test_batch_amortises_admission(self, backend):
        """One batch of N repeat programs vs N single requests: the
        batch pays admission/breaker once and walks the cache N times.
        Recorded, not gated — the two paths do the same evaluation
        work, so the difference is protocol overhead only."""
        source = E16_WORKLOADS["arith"]
        service = _service(backend, warm=True)
        service.handle({"expr": source})  # prime

        start = time.perf_counter()
        for _ in range(16):
            service.handle({"expr": source})
        singles = time.perf_counter() - start

        start = time.perf_counter()
        status, body, _ = service.handle({"programs": [source] * 16})
        batch = time.perf_counter() - start
        assert status == 200 and body["count"] == 16

        bench_record(
            "E16",
            workload="batch-vs-singles",
            backend=backend,
            singles_seconds=round(singles, 6),
            batch_seconds=round(batch, 6),
            speedup=round(singles / batch, 2) if batch > 0 else 0.0,
            divergences=0,
            target="reported",
        )
