"""E5 — imprecision in practice (Section 3.5): "if the program is
recompiled with different optimisation settings, then indeed the order
of evaluation might change, so a different exception might be
encountered first, and hence the exception returned by getException
might change."

Regenerates: the table
  (optimisation level / strategy)  ->  observed exception
for a program whose denotation is a multi-exception set, with the
soundness column: every observation is a member of the denoted set.
Also covers E10's blackhole knob (detected NonTermination is a member
of ⊥'s set).
"""

import pytest

from repro.api import compile_expr, denote_source
from repro.core.domains import Bad
from repro.machine import Exceptional, Machine, observe
from repro.machine.strategy import (
    LeftToRight,
    RightToLeft,
    Shuffled,
    standard_strategies,
)
from repro.prelude.loader import machine_env
from repro.transform.pipeline import O0, O1, O2, O2_commuted

FAULTY = '(1 `div` 0) + (error "Urk" + raise Overflow)'

LEVELS = [O0, O1, O2, O2_commuted()]


def _observe(expr, strategy):
    machine = Machine(strategy=strategy)
    return observe(expr, env=machine_env(machine), machine=machine)


@pytest.fixture(scope="module")
def denoted():
    value = denote_source(FAULTY)
    assert isinstance(value, Bad)
    return value.excs


class TestImprecisionTable:
    def test_multiple_distinct_observations(self, denoted):
        observed = set()
        for level in LEVELS:
            expr = level.optimise(compile_expr(FAULTY))
            for strategy in standard_strategies():
                out = _observe(expr, strategy)
                assert isinstance(out, Exceptional)
                observed.add(out.exc)
        # The imprecision is real: at least two distinct members of
        # the set are observable across configurations ...
        assert len(observed) >= 2

    def test_every_observation_is_denoted(self, denoted):
        for level in LEVELS:
            expr = level.optimise(compile_expr(FAULTY))
            for strategy in standard_strategies():
                out = _observe(expr, strategy)
                assert out.exc in denoted, (
                    f"{level}/{strategy}: {out.exc} not in {denoted}"
                )

    def test_same_configuration_is_reproducible(self):
        expr = O2.optimise(compile_expr(FAULTY))
        first = _observe(expr, Shuffled(3))
        second = _observe(expr, Shuffled(3))
        assert first.exc == second.exc

    def test_denotation_is_optimisation_invariant(self, denoted):
        # The SET does not change with the optimiser — only the
        # representative does.
        from repro.core.denote import DenoteContext, denote
        from repro.prelude.loader import denote_env

        for level in LEVELS:
            expr = level.optimise(compile_expr(FAULTY))
            ctx = DenoteContext(fuel=100_000)
            value = denote(expr, denote_env(ctx), ctx)
            assert isinstance(value, Bad)
            # optimisation may only refine (shrink) the set
            assert value.excs.superset_of(denoted) or denoted.superset_of(
                value.excs
            )

    def test_blackhole_observation_in_bottom_set(self):
        # E10: black = black + 1 reported as NonTermination, which is
        # a member of the denoted ⊥ set.
        source = "let { black = black + 1 } in black"
        denoted = denote_source(source, fuel=20_000)
        out = _observe(compile_expr(source), LeftToRight())
        assert isinstance(out, Exceptional)
        assert out.exc in denoted.excs

    def test_print_table(self, capsys, denoted):
        with capsys.disabled():
            print()
            print(f"denoted set: {denoted}")
            print(f"{'level':12s}", end="")
            for strategy in standard_strategies():
                print(f"{strategy.name:>20s}", end="")
            print()
            for level in LEVELS:
                expr = level.optimise(compile_expr(FAULTY))
                print(f"{level.name:12s}", end="")
                for strategy in standard_strategies():
                    out = _observe(expr, strategy)
                    print(f"{out.exc.name:>20s}", end="")
                print()


@pytest.mark.benchmark(group="E5-imprecision")
@pytest.mark.parametrize("level", LEVELS, ids=lambda lv: lv.name)
def test_bench_optimise_and_run(benchmark, level):
    expr = compile_expr(FAULTY)

    def run():
        optimised = level.optimise(expr)
        return _observe(optimised, LeftToRight())

    benchmark(run)
