"""E18 — profile-guided superinstructions beat the closure backend.

The second-generation compiled backend (``Machine(backend="super")``,
repro.machine.superop) fuses hot step sequences into single Python
frames.  The headline claim of docs/PERFORMANCE.md's Superinstructions
section: on the call-heavy fib workload the super backend is **≥5× the
AST walker and ≥1.5× the closure backend**, while staying
*observationally identical* — the same counter contract E13 gates for
the compiled backend, extended to a third backend.

Per workload, a fresh cold machine per rep on each of the three
backends (compile cost inside the timed region, exactly as E13
measures it); the full ``MachineStats`` snapshot is asserted equal
across all three every rep.  Speedups are recorded in the BENCH_E18
rows; the CI gates sit well below the claims (shared runners are
noisy): super must stay ≥1.3× over the AST walker on every workload,
and ≥1.2× over the compiled backend on fib.

Regenerates: the BENCH_E18 rows.
"""

import time

import pytest

from benchmarks.bench_compiled import (
    E13_WORKLOADS,
    _REPS,
    _compile,
    _run_once,
)
from benchmarks.conftest import bench_record
from repro.api import compile_expr
from repro.machine import Machine, Normal, observe
from repro.obs import SpanProfiler
from repro.prelude.loader import machine_env

# CI floors, deliberately below the recorded claims (≥5× AST / ≥1.5×
# compiled on fib): a perf bar that flakes gets deleted.
_CI_FLOOR_VS_AST = 1.3
_CI_FLOOR_VS_COMPILED = 1.2


def _best_of(compiled, backend: str):
    best, stats, value = _run_once(compiled, backend)
    for _ in range(_REPS - 1):
        elapsed, again, _v = _run_once(compiled, backend)
        assert again == stats  # deterministic: every rep, same counters
        best = min(best, elapsed)
    return best, stats, value


class TestSuperSpeedup:
    @pytest.mark.parametrize("name", sorted(E13_WORKLOADS))
    def test_triple_speedup_and_counter_parity(self, name):
        compiled = _compile(name)
        times, stats, values = {}, {}, {}
        for backend in ("ast", "compiled", "super"):
            times[backend], stats[backend], values[backend] = _best_of(
                compiled, backend
            )

        # The counter contract across all three backends: not "close",
        # *equal* — every step, allocation, force, raise, prim-op and
        # the force-depth high-water mark.
        assert stats["compiled"] == stats["ast"]
        assert stats["super"] == stats["ast"]
        assert str(values["super"]) == str(values["ast"])

        vs_ast = times["ast"] / times["super"]
        vs_compiled = times["compiled"] / times["super"]
        bench_record(
            "E18",
            workload=name,
            ast_seconds=round(times["ast"], 6),
            compiled_seconds=round(times["compiled"], 6),
            super_seconds=round(times["super"], 6),
            speedup_vs_ast=round(vs_ast, 2),
            speedup_vs_compiled=round(vs_compiled, 2),
            steps=stats["ast"]["steps"],
            allocations=stats["ast"]["allocations"],
            thunks_forced=stats["ast"]["thunks_forced"],
            target=(
                "fib ≥5× ast / ≥1.5× compiled "
                "(CI floors 1.3× / 1.2×)"
            ),
        )
        assert vs_ast >= _CI_FLOOR_VS_AST, (
            f"{name}: super backend only {vs_ast:.2f}× over ast "
            f"(ast {times['ast']:.4f}s vs super {times['super']:.4f}s)"
        )
        if name == "fib":
            assert vs_compiled >= _CI_FLOOR_VS_COMPILED, (
                f"fib: super backend only {vs_compiled:.2f}× over "
                f"compiled (compiled {times['compiled']:.4f}s vs "
                f"super {times['super']:.4f}s)"
            )


class TestProfileGuidedRun:
    """The profile loop the CLI's ``--profile-in`` drives: record a
    folded profile of the workload, feed it back as the heat map, and
    the guided run keeps the exact counter contract while fusing only
    the measured-hot regions."""

    def test_profiled_fib_keeps_counters(self):
        source = E13_WORKLOADS["fib"]
        profiler = SpanProfiler(decisions=True)
        machine = Machine(backend="ast")
        env = machine_env(machine)
        out = observe(
            compile_expr(source), env=env, machine=machine, sink=profiler
        )
        assert isinstance(out, Normal)
        reference = machine.stats.snapshot().as_dict()

        guided = Machine(
            backend="super", profile=profiler.folded_lines()
        )
        genv = machine_env(guided)
        gout = observe(compile_expr(source), env=genv, machine=guided)
        assert isinstance(gout, Normal)
        assert str(gout.value) == str(out.value)
        assert guided.stats.snapshot().as_dict() == reference
        # The profile marks the recursive region hot, so fusion fired.
        assert sum(guided.fusion_report().values()) > 0
