"""E19 — service telemetry is free when off (and cheap when on).

The serving layer's telemetry (docs/OBSERVABILITY.md, "Service
telemetry") makes the same pay-as-you-go promise the observability
sinks made in E1b: with ``--no-telemetry`` the service carries a
:class:`~repro.obs.telemetry.NullRegistry` and the null trace builder,
neither of which ever reaches the machine — so the machine executes
the *identical* step/allocation sequence, on every backend.  The
acceptance bar is 0% machine-step overhead, asserted as exact
equality workload by workload.

Stronger still: because request and trace ids are minted from the
service's own deterministic sequence counter (not the clock, not the
registry), the **entire response body** is byte-identical between a
telemetry-on and a telemetry-off service fed the same requests.  The
instruments observe the request from outside; they never steer it.

Wall-clock per-request medians for both configurations are recorded
(``*_seconds`` — reported, never gated) so the on-path cost stays
visible in the BENCH_E19 rows.

Regenerates: the BENCH_E19 rows.
"""

import json
import statistics
import time

import pytest

from benchmarks.conftest import bench_record
from repro.obs.telemetry import NullRegistry, histogram_stats, parse_exposition
from repro.serve import EvalService, ServiceConfig

#: One setup-light and one eval-heavy workload per backend: the former
#: maximises the relative weight of any hidden telemetry cost, the
#: latter shows the machine-dominated case.
E19_WORKLOADS = {
    "arith": "1 + 2 * 3 - 4",
    "sumsq": "sum (map (\\x -> x * x) (enumFromTo 1 50))",
}

_BACKENDS = ("ast", "compiled", "super")
_REQUESTS = 9


def _service(backend: str, telemetry: bool) -> EvalService:
    return EvalService(
        ServiceConfig(backend=backend, warm=True, telemetry=telemetry)
    )


def _drive(service: EvalService, source: str):
    """Send the workload ``_REQUESTS`` times; return (bodies, p50)."""
    bodies = []
    times = []
    for _ in range(_REQUESTS):
        start = time.perf_counter()
        status, body, _retry = service.handle({"expr": source})
        times.append(time.perf_counter() - start)
        assert status == 200, body
        bodies.append(body)
    return bodies, statistics.median(times)


class TestTelemetryIsFreeWhenOff:
    @pytest.mark.parametrize("backend", _BACKENDS)
    @pytest.mark.parametrize("name", sorted(E19_WORKLOADS))
    def test_step_parity_and_body_parity(self, backend, name):
        """Telemetry off vs on: identical machine counters (0% step
        overhead) and byte-identical response bodies."""
        source = E19_WORKLOADS[name]
        off_bodies, off_p50 = _drive(_service(backend, False), source)
        on_bodies, on_p50 = _drive(_service(backend, True), source)
        off_steps = sum(b["stats"]["steps"] for b in off_bodies)
        on_steps = sum(b["stats"]["steps"] for b in on_bodies)
        bench_record(
            "E19",
            workload=name,
            backend=backend,
            requests=_REQUESTS,
            off_steps=off_steps,
            on_steps=on_steps,
            overhead_pct=round(
                100.0 * (on_steps - off_steps) / off_steps, 4
            ),
            off_p50_seconds=round(off_p50, 6),
            on_p50_seconds=round(on_p50, 6),
        )
        assert on_steps == off_steps
        assert json.dumps(on_bodies, sort_keys=True) == json.dumps(
            off_bodies, sort_keys=True
        )

    def test_off_means_null_registry_and_empty_exposition(self):
        service = _service("ast", telemetry=False)
        assert isinstance(service.registry, NullRegistry)
        assert service.tracer is None
        service.handle({"expr": "1 + 2"})
        assert service.metrics_text() == ""
        assert service.get_trace("0000000000000001") is None


class TestTelemetryOnAccounting:
    """The on-path must earn its keep: the request histogram's count
    equals ``requests_total`` exactly, on every backend."""

    @pytest.mark.parametrize("backend", _BACKENDS)
    def test_histogram_count_matches_requests_total(self, backend):
        service = _service(backend, telemetry=True)
        for source in ("1 + 2", "head []", "(", "3 * 3"):
            service.handle({"expr": source})
        families = parse_exposition(service.metrics_text())
        stats = histogram_stats(families, "repro_request_seconds")
        assert stats is not None
        assert stats["count"] == service.health()["requests_total"] == 4


@pytest.mark.benchmark(group="E19-telemetry-overhead")
@pytest.mark.parametrize("telemetry", [False, True], ids=["off", "on"])
def test_bench_request(benchmark, telemetry):
    service = _service("ast", telemetry)
    source = E19_WORKLOADS["sumsq"]
    service.handle({"expr": source})  # warm the cache first
    benchmark(lambda: service.handle({"expr": source}))
