"""E3 — the transformation algebra under three semantics (Sections 3.4
/ 4.5 / Section 6's comparison).

Regenerates the central table: each rewrite rule classified as
identity / refinement / unsound under

  * imprecise   (the paper's design)
  * fixed-order (ML/FL baseline)
  * naive-case  (no exception-finding mode — E7's knob)

Shape asserted: the imprecise column validates every optimising rule;
the baselines lose the reordering rules; the deliberately-broken
``eta-reduce`` is rejected everywhere.  The benchmark times the
verifier itself (the cost of checking a rule over the corpus).
"""

import pytest

from repro.baselines.fixed_order import fixed_order_ctx, naive_case_ctx
from repro.transform import (
    AppOfCase,
    BetaReduce,
    CaseOfCase,
    CaseOfKnownCon,
    CaseSwitch,
    CommonSubexpression,
    CommutePrimArgs,
    DeadAltRemoval,
    DeadLetElimination,
    EtaReduce,
    InlineLet,
    LetFloatFromApp,
    LetFloatFromCase,
    classify_on_corpus,
    classify_transformation,
    default_corpus,
)

OPTIMISING_RULES = [
    BetaReduce(),
    InlineLet(aggressive=True),
    CommonSubexpression(),
    DeadLetElimination(),
    LetFloatFromApp(),
    LetFloatFromCase(),
    CaseOfKnownCon(),
    CommutePrimArgs(),
    CaseSwitch(),
    CaseOfCase(),
    AppOfCase(),
    DeadAltRemoval(),
]


@pytest.fixture(scope="module")
def table():
    corpus = default_corpus()
    rows = {}
    for name, factory in (
        ("imprecise", None),
        ("fixed-order", fixed_order_ctx),
        ("naive-case", naive_case_ctx),
    ):
        rows[name] = {
            r.rule: r
            for r in classify_on_corpus(
                OPTIMISING_RULES + [EtaReduce()],
                corpus=corpus,
                ctx_factory=factory,
                semantics_name=name,
            )
        }
    return rows


class TestTableShape:
    def test_imprecise_validates_all_optimising_rules(self, table):
        for rule in OPTIMISING_RULES:
            assert table["imprecise"][rule.name].valid, rule.name

    def test_fixed_order_loses_reordering_rules(self, table):
        assert not table["fixed-order"]["commute-prim-args"].valid
        assert not table["fixed-order"]["case-switch"].valid

    def test_naive_case_loses_case_switch(self, table):
        assert not table["naive-case"]["case-switch"].valid

    def test_eta_reduce_rejected_everywhere(self, table):
        for semantics in table:
            assert not table[semantics]["eta-reduce"].valid

    def test_imprecise_strictly_dominates(self, table):
        count = {
            semantics: sum(
                1
                for rule in OPTIMISING_RULES
                if table[semantics][rule.name].valid
            )
            for semantics in table
        }
        assert count["imprecise"] == len(OPTIMISING_RULES)
        assert count["imprecise"] > count["fixed-order"]
        assert count["imprecise"] > count["naive-case"]

    def test_print_table(self, table, capsys):
        with capsys.disabled():
            print()
            print(f"{'rule':28s}", end="")
            for semantics in table:
                print(f"{semantics:>14s}", end="")
            print()
            for rule in OPTIMISING_RULES + [EtaReduce()]:
                print(f"{rule.name:28s}", end="")
                for semantics in table:
                    print(
                        f"{table[semantics][rule.name].worst:>14s}",
                        end="",
                    )
                print()


@pytest.mark.benchmark(group="E3-verify")
@pytest.mark.parametrize(
    "rule",
    [BetaReduce(), CommutePrimArgs(), CaseSwitch()],
    ids=lambda r: r.name,
)
def test_bench_classification(benchmark, rule):
    corpus = default_corpus()
    benchmark(lambda: classify_transformation(rule, corpus=corpus))
